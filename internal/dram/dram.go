// Package dram models the 2GB LPDDR3 main memory of the baseline platform
// (Table I: 1 channel, 2 ranks per channel, 8 banks per rank, open-page
// policy, tCL = tRP = tRCD = 13ns), the role DRAMSim2 played in the paper's
// GEM5 setup.
//
// The model is a bank-state timing model: each bank tracks its open row and
// the cycle it next becomes free. An access pays CAS latency on a row hit,
// RCD+CAS on a row miss with the bank precharged, and RP+RCD+CAS on a row
// conflict — plus queueing behind earlier requests to the same bank. That is
// enough to make poor-locality SPEC-style access streams pay realistic,
// contention-dependent latencies while row-friendly strided streams stay
// cheap.
package dram

// Config describes the DRAM geometry and timing in CPU cycles.
type Config struct {
	Channels     int
	RanksPerChan int
	BanksPerRank int
	RowBytes     uint32

	TCL  int64 // CAS latency
	TRP  int64 // precharge
	TRCD int64 // activate

	Transfer int64 // data burst transfer time
	CtrlLat  int64 // fixed controller/queueing overhead
}

// DefaultConfig converts Table I's 13ns timings at the 1.5GHz CPU clock
// (13ns * 1.5GHz = ~20 cycles).
func DefaultConfig() Config {
	return Config{
		Channels:     1,
		RanksPerChan: 2,
		BanksPerRank: 8,
		RowBytes:     4096,
		TCL:          20,
		TRP:          20,
		TRCD:         20,
		Transfer:     4,
		CtrlLat:      6,
	}
}

type bank struct {
	openRow  int64
	hasOpen  bool
	freeAt   int64
	accesses int64
	rowHits  int64
}

// Controller is the DRAM timing model.
type Controller struct {
	cfg   Config
	banks []bank

	// Stats.
	Accesses int64
	RowHits  int64
}

// New creates a controller.
func New(cfg Config) *Controller {
	n := cfg.Channels * cfg.RanksPerChan * cfg.BanksPerRank
	if n <= 0 {
		n = 16
	}
	return &Controller{cfg: cfg, banks: make([]bank, n)}
}

// Access issues a request for addr at cycle now and returns the completion
// cycle.
func (c *Controller) Access(addr uint32, now int64) int64 {
	c.Accesses++
	row := int64(addr / c.cfg.RowBytes)
	b := &c.banks[int(row)%len(c.banks)]
	b.accesses++

	start := now + c.cfg.CtrlLat
	if b.freeAt > start {
		start = b.freeAt
	}
	var lat int64
	switch {
	case b.hasOpen && b.openRow == row:
		lat = c.cfg.TCL
		b.rowHits++
		c.RowHits++
	case !b.hasOpen:
		lat = c.cfg.TRCD + c.cfg.TCL
	default:
		lat = c.cfg.TRP + c.cfg.TRCD + c.cfg.TCL
	}
	done := start + lat + c.cfg.Transfer
	b.openRow = row
	b.hasOpen = true
	b.freeAt = done
	return done
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (c *Controller) RowHitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.RowHits) / float64(c.Accesses)
}
