package dram

import (
	"math/rand"
	"testing"
)

func TestRowHitCheaperThanActivate(t *testing.T) {
	c := New(DefaultConfig())
	first := c.Access(0, 0)
	base := first + 100
	hit := c.Access(128, base) - base
	cfg := DefaultConfig()
	if hit != cfg.CtrlLat+cfg.TCL+cfg.Transfer {
		t.Errorf("row hit latency %d, want %d", hit, cfg.CtrlLat+cfg.TCL+cfg.Transfer)
	}
}

func TestRowConflictPaysPrecharge(t *testing.T) {
	c := New(DefaultConfig())
	cfg := DefaultConfig()
	c.Access(0, 0)
	base := int64(1000)
	// Same bank (16 banks): row 16 maps to bank 0 like row 0.
	conflict := c.Access(16*cfg.RowBytes, base) - base
	want := cfg.CtrlLat + cfg.TRP + cfg.TRCD + cfg.TCL + cfg.Transfer
	if conflict != want {
		t.Errorf("row conflict latency %d, want %d", conflict, want)
	}
}

func TestBankQueueing(t *testing.T) {
	c := New(DefaultConfig())
	d1 := c.Access(0, 0)
	d2 := c.Access(64, 0) // same bank, same row, same cycle: must serialize
	if d2 <= d1 {
		t.Errorf("no queueing: %d then %d", d1, d2)
	}
}

func TestBankParallelism(t *testing.T) {
	c := New(DefaultConfig())
	cfg := DefaultConfig()
	// Different banks can overlap: both requests at cycle 0 finish at the
	// same (cold activate) latency.
	d1 := c.Access(0, 0)
	d2 := c.Access(cfg.RowBytes, 0) // row 1 -> bank 1
	if d2 != d1 {
		t.Errorf("independent banks serialized: %d vs %d", d1, d2)
	}
}

func TestRowHitRateTracksLocality(t *testing.T) {
	seq := New(DefaultConfig())
	now := int64(0)
	for i := 0; i < 1000; i++ {
		now = seq.Access(uint32(i*64), now)
	}
	streaming := seq.RowHitRate()

	rnd := New(DefaultConfig())
	r := rand.New(rand.NewSource(1))
	now = 0
	for i := 0; i < 1000; i++ {
		now = rnd.Access(uint32(r.Intn(1<<26))&^63, now)
	}
	random := rnd.RowHitRate()
	if streaming <= random {
		t.Errorf("streaming row-hit rate %.3f <= random %.3f", streaming, random)
	}
	if streaming < 0.8 {
		t.Errorf("streaming row-hit rate %.3f too low", streaming)
	}
}

func TestAccessCounting(t *testing.T) {
	c := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		c.Access(uint32(i*4096), 0)
	}
	if c.Accesses != 10 {
		t.Errorf("Accesses = %d", c.Accesses)
	}
}
