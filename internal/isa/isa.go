// Package isa defines the ARM-like instruction set used throughout the
// reproduction: a 32-bit "A32" base format with predicated execution over 16
// architected registers, and a compact 16-bit "T16" (Thumb) format that drops
// predication and restricts operands to the first 11 registers (R0..R10),
// mirroring the constraints the paper exploits (§III-B).
//
// The package carries only the architectural description: opcodes, register
// names, operand shapes, execution latency classes and the Thumb
// representability rules. Bit-level encodings live in internal/encoding, the
// static program IR in internal/prog.
package isa

import "fmt"

// Reg names one of the 16 architected registers. R13..R15 have the usual ARM
// roles (SP, LR, PC) and are never allocated as data registers by the
// workload generators.
type Reg uint8

// Architected registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // R13
	LR // R14
	PC // R15

	NumRegs = 16

	// ThumbMaxReg is the highest register usable as an operand in the
	// 16-bit format: the T16 encoding has room for 11 registers (§III-B).
	ThumbMaxReg = R10
)

// NoReg marks an absent operand.
const NoReg Reg = 0xFF

// String implements fmt.Stringer for registers.
func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	case PC:
		return "pc"
	case NoReg:
		return "-"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Cond is the predication condition of an A32 instruction. CondAL means the
// instruction is unconditional (not predicated). Any other condition makes an
// instruction non-representable in T16, which has no predication.
type Cond uint8

// Condition codes (a subset of ARM's).
const (
	CondAL Cond = iota // always — not predicated
	CondEQ
	CondNE
	CondGE
	CondLT
	CondGT
	CondLE
	CondCS
	CondCC

	NumConds = 9
)

var condNames = [NumConds]string{"", "eq", "ne", "ge", "lt", "gt", "le", "cs", "cc"}

// String implements fmt.Stringer for condition codes.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond%d", uint8(c))
}

// Class groups opcodes by the functional unit and latency behaviour they
// exercise in the pipeline model.
type Class uint8

// Functional classes.
const (
	ClassALU    Class = iota // single-cycle integer
	ClassShift               // single-cycle shifts/rotates
	ClassMul                 // integer multiply
	ClassDiv                 // integer divide (long latency)
	ClassLoad                // memory load
	ClassStore               // memory store
	ClassBranch              // direct/conditional branch
	ClassCall                // function call (BL)
	ClassRet                 // function return (BX lr)
	ClassFPAdd               // floating add/sub/cmp
	ClassFPMul               // floating multiply / MLA
	ClassFPDiv               // floating divide/sqrt (very long)
	ClassCDP                 // the Thumb-switch coprocessor command (§IV-B)
	ClassNop                 // padding / no-op
	ClassSys                 // system call boundary marker

	NumClasses = 15
)

var classNames = [NumClasses]string{
	"alu", "shift", "mul", "div", "load", "store", "branch", "call", "ret",
	"fpadd", "fpmul", "fpdiv", "cdp", "nop", "sys",
}

// String implements fmt.Stringer for classes.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class%d", uint8(c))
}

// Op is an opcode mnemonic.
type Op uint8

// Opcodes. The set is a pragmatic ARMv7-flavoured subset: enough to express
// the dataflow/latency/encoding behaviours the evaluation depends on.
const (
	OpNOP Op = iota
	OpADD
	OpSUB
	OpRSB // reverse subtract — no T16 encoding
	OpAND
	OpORR
	OpEOR
	OpBIC
	OpMOV
	OpMVN
	OpCMP
	OpTST
	OpLSL
	OpLSR
	OpASR
	OpROR
	OpMUL
	OpMLA  // multiply-accumulate — 3 sources, no T16 encoding
	OpSDIV // no T16 encoding
	OpUDIV // no T16 encoding
	OpLDR
	OpLDRB
	OpLDRH
	OpSTR
	OpSTRB
	OpSTRH
	OpB  // branch (possibly conditional via Cond)
	OpBL // call
	OpBX // indirect branch / return
	OpVADD
	OpVSUB
	OpVMUL
	OpVDIV
	OpVMLA
	OpVLDR
	OpVSTR
	OpCDP // coprocessor data processing — reused as the Thumb-mode switch
	OpSVC

	NumOps = 38
)

// opInfo is the static description of one opcode.
type opInfo struct {
	name     string
	class    Class
	hasT16   bool  // a 16-bit encoding exists for this opcode
	latency  int   // base execute latency in cycles (loads add memory time)
	numSrc   uint8 // register source operands (before any immediate)
	hasDst   bool
	isMem    bool
	isCtl    bool // redirects control flow
	writesCC bool // condition-setting (CMP/TST)
}

var opTable = [NumOps]opInfo{
	OpNOP:  {"nop", ClassNop, true, 1, 0, false, false, false, false},
	OpADD:  {"add", ClassALU, true, 1, 2, true, false, false, false},
	OpSUB:  {"sub", ClassALU, true, 1, 2, true, false, false, false},
	OpRSB:  {"rsb", ClassALU, false, 1, 2, true, false, false, false},
	OpAND:  {"and", ClassALU, true, 1, 2, true, false, false, false},
	OpORR:  {"orr", ClassALU, true, 1, 2, true, false, false, false},
	OpEOR:  {"eor", ClassALU, true, 1, 2, true, false, false, false},
	OpBIC:  {"bic", ClassALU, true, 1, 2, true, false, false, false},
	OpMOV:  {"mov", ClassALU, true, 1, 1, true, false, false, false},
	OpMVN:  {"mvn", ClassALU, true, 1, 1, true, false, false, false},
	OpCMP:  {"cmp", ClassALU, true, 1, 2, false, false, false, true},
	OpTST:  {"tst", ClassALU, true, 1, 2, false, false, false, true},
	OpLSL:  {"lsl", ClassShift, true, 1, 2, true, false, false, false},
	OpLSR:  {"lsr", ClassShift, true, 1, 2, true, false, false, false},
	OpASR:  {"asr", ClassShift, true, 1, 2, true, false, false, false},
	OpROR:  {"ror", ClassShift, true, 1, 2, true, false, false, false},
	OpMUL:  {"mul", ClassMul, true, 3, 2, true, false, false, false},
	OpMLA:  {"mla", ClassMul, false, 4, 3, true, false, false, false},
	OpSDIV: {"sdiv", ClassDiv, false, 12, 2, true, false, false, false},
	OpUDIV: {"udiv", ClassDiv, false, 12, 2, true, false, false, false},
	OpLDR:  {"ldr", ClassLoad, true, 1, 1, true, true, false, false},
	OpLDRB: {"ldrb", ClassLoad, true, 1, 1, true, true, false, false},
	OpLDRH: {"ldrh", ClassLoad, true, 1, 1, true, true, false, false},
	OpSTR:  {"str", ClassStore, true, 1, 2, false, true, false, false},
	OpSTRB: {"strb", ClassStore, true, 1, 2, false, true, false, false},
	OpSTRH: {"strh", ClassStore, true, 1, 2, false, true, false, false},
	OpB:    {"b", ClassBranch, true, 1, 0, false, false, true, false},
	OpBL:   {"bl", ClassCall, true, 1, 0, false, false, true, false},
	OpBX:   {"bx", ClassRet, true, 1, 1, false, false, true, false},
	OpVADD: {"vadd", ClassFPAdd, false, 4, 2, true, false, false, false},
	OpVSUB: {"vsub", ClassFPAdd, false, 4, 2, true, false, false, false},
	OpVMUL: {"vmul", ClassFPMul, false, 5, 2, true, false, false, false},
	OpVDIV: {"vdiv", ClassFPDiv, false, 15, 2, true, false, false, false},
	OpVMLA: {"vmla", ClassFPMul, false, 6, 3, true, false, false, false},
	OpVLDR: {"vldr", ClassLoad, false, 1, 1, true, true, false, false},
	OpVSTR: {"vstr", ClassStore, false, 1, 2, false, true, false, false},
	OpCDP:  {"cdp", ClassCDP, true, 1, 0, false, false, false, false},
	OpSVC:  {"svc", ClassSys, false, 1, 0, false, false, false, false},
}

// String implements fmt.Stringer for opcodes.
func (o Op) String() string {
	if int(o) < len(opTable) {
		return opTable[o].name
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// ClassOf returns the functional class of an opcode.
func (o Op) ClassOf() Class { return opTable[o].class }

// BaseLatency returns the execute latency in cycles, excluding memory time
// for loads (the memory hierarchy adds that in the simulator).
func (o Op) BaseLatency() int { return opTable[o].latency }

// HasT16 reports whether a 16-bit encoding exists for this opcode at all.
func (o Op) HasT16() bool { return opTable[o].hasT16 }

// NumSrc returns how many register sources the opcode reads (one of them may
// be replaced by an immediate in a given instruction).
func (o Op) NumSrc() uint8 { return opTable[o].numSrc }

// HasDst reports whether the opcode writes a destination register.
func (o Op) HasDst() bool { return opTable[o].hasDst }

// IsMem reports whether the opcode accesses data memory.
func (o Op) IsMem() bool { return opTable[o].isMem }

// IsControl reports whether the opcode can redirect control flow.
func (o Op) IsControl() bool { return opTable[o].isCtl }

// T16MaxImm is the largest unsigned immediate encodable in the 16-bit
// format's 7-bit immediate field.
const T16MaxImm = 127

// A32MaxImm is the largest unsigned immediate encodable in the 32-bit
// format's 12-bit immediate field.
const A32MaxImm = 4095

// CDPMaxRun is the maximum number of 16-bit instructions a single CDP
// mode-switch command covers: a 3-bit length field encodes the count of
// instructions following the one packed into the CDP's own 32-bit word
// (paper §IV-B). Longer converted sequences chain additional CDP commands.
const CDPMaxRun = 8

// Inst is one static instruction. Its zero value is a NOP.
//
// Operand convention: Rd is the destination (NoReg when absent), Rn and Rm
// the register sources. When HasImm is set, the immediate replaces Rm as the
// second operand. Stores read both Rn (base address) and Rm (data).
type Inst struct {
	Op     Op
	Cond   Cond // CondAL unless the instruction is predicated
	Rd     Reg
	Rn     Reg
	Rm     Reg
	Imm    int32
	HasImm bool
}

// NewNop returns a NOP instruction.
func NewNop() Inst {
	return Inst{Op: OpNOP, Rd: NoReg, Rn: NoReg, Rm: NoReg}
}

// Sources appends the register sources of the instruction to dst and returns
// it. Predicated instructions additionally depend on the condition-setting
// producer, which the trace layer tracks separately via the CC register.
func (in Inst) Sources(dst []Reg) []Reg {
	info := opTable[in.Op]
	n := int(info.numSrc)
	// For non-memory ops an immediate replaces the Rm operand. For memory
	// ops the immediate is the address offset; register sources are
	// unchanged (load: base Rn; store: base Rn + data Rm).
	if in.HasImm && !info.isMem && n > 0 {
		n--
	}
	switch n {
	case 0:
	case 1:
		if in.Rn != NoReg {
			dst = append(dst, in.Rn)
		}
	case 2:
		if in.Rn != NoReg {
			dst = append(dst, in.Rn)
		}
		if in.Rm != NoReg {
			dst = append(dst, in.Rm)
		}
	case 3:
		if in.Rn != NoReg {
			dst = append(dst, in.Rn)
		}
		if in.Rm != NoReg {
			dst = append(dst, in.Rm)
		}
		if in.Rd != NoReg { // MLA/VMLA accumulate into Rd
			dst = append(dst, in.Rd)
		}
	}
	return dst
}

// Dest returns the destination register, or NoReg if the instruction does
// not write one.
func (in Inst) Dest() Reg {
	if !opTable[in.Op].hasDst {
		return NoReg
	}
	return in.Rd
}

// WritesCC reports whether the instruction sets the condition flags.
func (in Inst) WritesCC() bool { return opTable[in.Op].writesCC }

// ReadsCC reports whether the instruction is predicated (reads flags) or is
// a conditional branch.
func (in Inst) ReadsCC() bool {
	return in.Cond != CondAL
}

// NonThumbReason explains why an instruction cannot be converted to T16.
type NonThumbReason uint8

// Reasons an instruction cannot be represented in the 16-bit format.
const (
	ThumbOK          NonThumbReason = iota
	ThumbPredicated                 // predicated execution not expressible
	ThumbHighReg                    // operand register above R10
	ThumbNoEncoding                 // opcode has no 16-bit encoding
	ThumbImmTooLarge                // immediate exceeds the 7-bit field
)

// String implements fmt.Stringer for NonThumbReason.
func (r NonThumbReason) String() string {
	switch r {
	case ThumbOK:
		return "ok"
	case ThumbPredicated:
		return "predicated"
	case ThumbHighReg:
		return "high-register"
	case ThumbNoEncoding:
		return "no-encoding"
	case ThumbImmTooLarge:
		return "imm-too-large"
	default:
		return "unknown"
	}
}

// ThumbCheck reports whether the instruction can be represented in the
// 16-bit format as-is — the "all or nothing" test the CritIC pass applies to
// each member of a chain (§III-B, footnote 1). When the answer is no, the
// returned reason says why.
func (in Inst) ThumbCheck() NonThumbReason {
	if in.Cond != CondAL {
		return ThumbPredicated
	}
	if !opTable[in.Op].hasT16 {
		return ThumbNoEncoding
	}
	for _, r := range [...]Reg{in.Rd, in.Rn, in.Rm} {
		if r != NoReg && r > ThumbMaxReg && r != LR { // BX lr allowed: LR has a dedicated T16 form
			return ThumbHighReg
		}
	}
	if in.HasImm && (in.Imm < 0 || in.Imm > T16MaxImm) {
		return ThumbImmTooLarge
	}
	return ThumbOK
}

// ThumbRepresentable reports whether ThumbCheck returns ThumbOK.
func (in Inst) ThumbRepresentable() bool { return in.ThumbCheck() == ThumbOK }

// String renders the instruction in assembler-like syntax.
func (in Inst) String() string {
	s := in.Op.String()
	if in.Cond != CondAL {
		s += in.Cond.String()
	}
	args := ""
	add := func(a string) {
		if args != "" {
			args += ", "
		}
		args += a
	}
	if opTable[in.Op].hasDst && in.Rd != NoReg {
		add(in.Rd.String())
	}
	if in.Rn != NoReg {
		add(in.Rn.String())
	}
	if in.HasImm {
		add(fmt.Sprintf("#%d", in.Imm))
	} else if in.Rm != NoReg {
		add(in.Rm.String())
	}
	if args == "" {
		return s
	}
	return s + " " + args
}
