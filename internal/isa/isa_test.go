package isa

import (
	"testing"
	"testing/quick"
)

func TestOpTableComplete(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has no name", op)
		}
		if op.BaseLatency() < 1 {
			t.Errorf("op %v has latency %d < 1", op, op.BaseLatency())
		}
		if op.ClassOf() >= NumClasses {
			t.Errorf("op %v has bad class %d", op, op.ClassOf())
		}
	}
}

func TestClassProperties(t *testing.T) {
	memOps := []Op{OpLDR, OpLDRB, OpLDRH, OpSTR, OpSTRB, OpSTRH, OpVLDR, OpVSTR}
	for _, op := range memOps {
		if !op.IsMem() {
			t.Errorf("%v should be a memory op", op)
		}
	}
	ctlOps := []Op{OpB, OpBL, OpBX}
	for _, op := range ctlOps {
		if !op.IsControl() {
			t.Errorf("%v should be a control op", op)
		}
	}
	if OpADD.IsMem() || OpADD.IsControl() {
		t.Error("ADD misclassified")
	}
}

func TestNoT16ForComplexOps(t *testing.T) {
	// The paper's constraints: no predication and fewer registers in T16.
	// Additionally our ISA gives no 16-bit encodings to FP, divide, and
	// 3-source ops, mirroring real Thumb-1.
	noT16 := []Op{OpSDIV, OpUDIV, OpMLA, OpRSB, OpVADD, OpVSUB, OpVMUL, OpVDIV, OpVMLA, OpVLDR, OpVSTR, OpSVC}
	for _, op := range noT16 {
		if op.HasT16() {
			t.Errorf("%v should not have a T16 encoding", op)
		}
	}
	yesT16 := []Op{OpADD, OpSUB, OpMOV, OpLDR, OpSTR, OpB, OpBL, OpMUL, OpCDP}
	for _, op := range yesT16 {
		if !op.HasT16() {
			t.Errorf("%v should have a T16 encoding", op)
		}
	}
}

func TestThumbCheck(t *testing.T) {
	cases := []struct {
		name string
		in   Inst
		want NonThumbReason
	}{
		{"plain add", Inst{Op: OpADD, Rd: R0, Rn: R1, Rm: R2}, ThumbOK},
		{"max thumb reg", Inst{Op: OpADD, Rd: R10, Rn: R10, Rm: R10}, ThumbOK},
		{"high dest", Inst{Op: OpADD, Rd: R11, Rn: R1, Rm: R2}, ThumbHighReg},
		{"high source", Inst{Op: OpADD, Rd: R0, Rn: R12, Rm: R2}, ThumbHighReg},
		{"predicated", Inst{Op: OpADD, Cond: CondEQ, Rd: R0, Rn: R1, Rm: R2}, ThumbPredicated},
		{"no encoding", Inst{Op: OpSDIV, Rd: R0, Rn: R1, Rm: R2}, ThumbNoEncoding},
		{"imm fits", Inst{Op: OpADD, Rd: R0, Rn: R1, HasImm: true, Imm: 127}, ThumbOK},
		{"imm too big", Inst{Op: OpADD, Rd: R0, Rn: R1, HasImm: true, Imm: 128}, ThumbImmTooLarge},
		{"imm negative", Inst{Op: OpSUB, Rd: R0, Rn: R1, HasImm: true, Imm: -1}, ThumbImmTooLarge},
		{"return via lr", Inst{Op: OpBX, Rd: NoReg, Rn: LR, Rm: NoReg}, ThumbOK},
		{"predication dominates", Inst{Op: OpSDIV, Cond: CondNE, Rd: R0, Rn: R1, Rm: R2}, ThumbPredicated},
	}
	for _, c := range cases {
		if got := c.in.ThumbCheck(); got != c.want {
			t.Errorf("%s: ThumbCheck() = %v, want %v", c.name, got, c.want)
		}
		if c.in.ThumbRepresentable() != (c.want == ThumbOK) {
			t.Errorf("%s: ThumbRepresentable inconsistent with ThumbCheck", c.name)
		}
	}
}

func TestSources(t *testing.T) {
	cases := []struct {
		name string
		in   Inst
		want []Reg
	}{
		{"add rr", Inst{Op: OpADD, Rd: R0, Rn: R1, Rm: R2}, []Reg{R1, R2}},
		{"add imm", Inst{Op: OpADD, Rd: R0, Rn: R1, HasImm: true, Imm: 4, Rm: NoReg}, []Reg{R1}},
		{"mov", Inst{Op: OpMOV, Rd: R0, Rn: R1, Rm: NoReg}, []Reg{R1}},
		{"mov imm", Inst{Op: OpMOV, Rd: R0, Rn: NoReg, Rm: NoReg, HasImm: true, Imm: 7}, nil},
		{"load", Inst{Op: OpLDR, Rd: R0, Rn: R1, Rm: NoReg, HasImm: true, Imm: 8}, []Reg{R1}},
		{"store", Inst{Op: OpSTR, Rd: NoReg, Rn: R1, Rm: R2, HasImm: true, Imm: 8}, []Reg{R1, R2}},
		{"mla", Inst{Op: OpMLA, Rd: R0, Rn: R1, Rm: R2}, []Reg{R1, R2, R0}},
		{"branch", Inst{Op: OpB, Rd: NoReg, Rn: NoReg, Rm: NoReg}, nil},
		{"ret", Inst{Op: OpBX, Rd: NoReg, Rn: LR, Rm: NoReg}, []Reg{LR}},
	}
	for _, c := range cases {
		got := c.in.Sources(nil)
		if len(got) != len(c.want) {
			t.Errorf("%s: Sources() = %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: Sources() = %v, want %v", c.name, got, c.want)
				break
			}
		}
	}
}

func TestDest(t *testing.T) {
	if d := (Inst{Op: OpADD, Rd: R3, Rn: R1, Rm: R2}).Dest(); d != R3 {
		t.Errorf("ADD dest = %v, want r3", d)
	}
	if d := (Inst{Op: OpSTR, Rd: NoReg, Rn: R1, Rm: R2}).Dest(); d != NoReg {
		t.Errorf("STR dest = %v, want none", d)
	}
	if d := (Inst{Op: OpCMP, Rd: NoReg, Rn: R1, Rm: R2}).Dest(); d != NoReg {
		t.Errorf("CMP dest = %v, want none", d)
	}
	if !(Inst{Op: OpCMP, Rn: R1, Rm: R2}).WritesCC() {
		t.Error("CMP should write CC")
	}
	if !(Inst{Op: OpB, Cond: CondEQ}).ReadsCC() {
		t.Error("conditional branch should read CC")
	}
}

func TestStringRendering(t *testing.T) {
	in := Inst{Op: OpADD, Rd: R0, Rn: R1, HasImm: true, Imm: 42}
	if got := in.String(); got != "add r0, r1, #42" {
		t.Errorf("String() = %q", got)
	}
	in = Inst{Op: OpB, Cond: CondEQ, Rd: NoReg, Rn: NoReg, Rm: NoReg}
	if got := in.String(); got != "beq" {
		t.Errorf("String() = %q", got)
	}
	if got := NewNop().String(); got != "nop" {
		t.Errorf("String() = %q", got)
	}
}

// Property: ThumbCheck is stable under the documented rules — any instruction
// reporting ThumbOK must be unpredicated, use only low registers (or LR), and
// have a fitting immediate.
func TestThumbCheckProperty(t *testing.T) {
	f := func(op uint8, cond uint8, rd, rn, rm uint8, imm int16, hasImm bool) bool {
		in := Inst{
			Op:     Op(op % uint8(NumOps)),
			Cond:   Cond(cond % uint8(NumConds)),
			Rd:     Reg(rd % 17),
			Rn:     Reg(rn % 17),
			Rm:     Reg(rm % 17),
			Imm:    int32(imm),
			HasImm: hasImm,
		}
		if in.Rd == 16 {
			in.Rd = NoReg
		}
		if in.Rn == 16 {
			in.Rn = NoReg
		}
		if in.Rm == 16 {
			in.Rm = NoReg
		}
		if in.ThumbCheck() != ThumbOK {
			return true // nothing to verify for rejected instructions
		}
		if in.Cond != CondAL || !in.Op.HasT16() {
			return false
		}
		for _, r := range []Reg{in.Rd, in.Rn, in.Rm} {
			if r != NoReg && r > ThumbMaxReg && r != LR {
				return false
			}
		}
		if in.HasImm && (in.Imm < 0 || in.Imm > T16MaxImm) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
