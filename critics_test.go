package critics

import (
	"encoding/json"
	"testing"

	"critics/internal/core"
)

func TestOptimizeAppEndToEnd(t *testing.T) {
	rep, err := OptimizeApp("acrobat", WithQuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SpeedupPct <= 0 {
		t.Errorf("no speedup: %+v", rep)
	}
	if rep.CodeBytesAfter >= rep.CodeBytesBefore {
		t.Error("code did not shrink")
	}
	if rep.UniqueChains == 0 || rep.SelectedChains == 0 {
		t.Error("profile empty")
	}
	if rep.ThumbRepresent < 0.8 {
		t.Errorf("thumb representability %.3f", rep.ThumbRepresent)
	}
	if rep.SystemEnergySavingPct <= 0 {
		t.Error("no energy saving")
	}
	if s := rep.String(); len(s) < 100 {
		t.Errorf("report too short: %q", s)
	}
}

func TestOptimizeAppUnknown(t *testing.T) {
	if _, err := OptimizeApp("doom"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestAppsCatalog(t *testing.T) {
	apps := Apps()
	if len(apps) != 10 {
		t.Fatalf("got %d apps", len(apps))
	}
}

func TestExperimentIDsAndRun(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("only %d experiment ids", len(ids))
	}
	out, err := Experiment("tab2")
	if err != nil || out == "" {
		t.Fatalf("tab2: %v", err)
	}
	if _, err := Experiment("fig99z"); err == nil {
		t.Error("bad id accepted")
	}
}

func TestProfileRoundTripThroughJSON(t *testing.T) {
	prof, err := BuildProfile("music", WithQuickScale())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(prof)
	if err != nil {
		t.Fatal(err)
	}
	var back core.Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// The deserialized profile must drive the compiler identically.
	st, err := CompileWithProfile("music", &back)
	if err != nil {
		t.Fatal(err)
	}
	if st.ChainsConverted == 0 {
		t.Error("profile from JSON converted nothing")
	}
}

func TestTraceSample(t *testing.T) {
	dyns, err := TraceSample("browser", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(dyns) != 5000 {
		t.Fatalf("got %d dyns", len(dyns))
	}
	if _, err := TraceSample("doom", 10); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestSessionCaches(t *testing.T) {
	s := NewSession(WithQuickScale())
	if _, err := s.Experiment("tab1"); err != nil {
		t.Fatal(err)
	}
	if s.Context() == nil {
		t.Fatal("no context")
	}
}
