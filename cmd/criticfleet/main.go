// Command criticfleet simulates a device fleet for the fleet PGO loop: N
// devices profile apps locally (internal/fleet.BuildDeviceSketch), encode
// the bounded sketches and stream them to a criticd coordinator's
// POST /v1/profiles over several rounds. Chaos knobs inject dropped uploads
// and delivery jitter — the consensus is a lattice join, so the coordinator
// must converge to identical bytes regardless.
//
// Usage:
//
//	criticfleet -addr http://127.0.0.1:9720 -devices 8 -rounds 2
//	criticfleet -apps acrobat,maps -drop 0.2 -jitter 20ms -seed 7
//	criticfleet -converge -quick        # submit a fleet job per app afterwards
//
// Every device decision (drop, jitter, upload order under -shuffle) comes
// from a per-device RNG seeded by (-seed, device index), so a run is
// reproducible and the set of delivered sketches is independent of
// goroutine scheduling.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"critics/internal/fleet"
	"critics/internal/server"
	"critics/internal/telemetry"
	"critics/internal/workload"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "criticfleet:", err)
	os.Exit(1)
}

func main() {
	defaultAddr := os.Getenv("CRITICD_ADDR")
	if defaultAddr == "" {
		defaultAddr = "http://127.0.0.1:9720"
	}
	var (
		addr     = flag.String("addr", defaultAddr, "criticd base URL (or $CRITICD_ADDR)")
		devices  = flag.Int("devices", 8, "simulated devices")
		appsFlag = flag.String("apps", "acrobat", "comma-separated app names the fleet runs")
		rounds   = flag.Int("rounds", 2, "upload rounds; each round extends every device's cumulative sketch")
		drop     = flag.Float64("drop", 0, "probability a device drops an upload (chaos; re-sent next round)")
		jitter   = flag.Duration("jitter", 0, "max random delay before each upload (chaos)")
		seed     = flag.Int64("seed", 1, "fleet RNG seed (drop/jitter/shuffle decisions)")
		shuffle  = flag.Bool("shuffle", false, "permute device launch order per round (arrival-order chaos)")
		converge = flag.Bool("converge", false, "submit a fleet converge job per app after the rounds and print the reports")
		quick    = flag.Bool("quick", false, "reduced-scale windows for -converge jobs")
		timeout  = flag.Duration("timeout", 10*time.Minute, "overall deadline")
		verbose  = flag.Bool("v", false, "per-upload log on stderr")
		version  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(telemetry.PrintVersion("criticfleet"))
		return
	}
	if *devices <= 0 || *rounds <= 0 {
		fatal(fmt.Errorf("-devices and -rounds must be positive"))
	}

	var apps []workload.App
	for _, name := range strings.Split(*appsFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := workload.FindApp(name)
		if !ok {
			fatal(fmt.Errorf("unknown app %q", name))
		}
		apps = append(apps, a)
	}
	if len(apps) == 0 {
		fatal(fmt.Errorf("no apps (-apps)"))
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := server.NewClient(*addr)

	var (
		mu       sync.Mutex
		sent     int
		dropped  int
		rejected int
	)
	logf := func(format string, args ...any) {
		if *verbose {
			fmt.Fprintf(os.Stderr, "criticfleet: "+format+"\n", args...)
		}
	}

	// One goroutine per device per round; all chaos decisions come from the
	// device's own deterministic RNG, so the delivered set is a pure
	// function of the flags even though arrival order is not.
	for round := 1; round <= *rounds; round++ {
		order := make([]int, *devices)
		for i := range order {
			order[i] = i
		}
		if *shuffle {
			rand.New(rand.NewSource(*seed+int64(round))).Shuffle(len(order), func(i, j int) {
				order[i], order[j] = order[j], order[i]
			})
		}
		var wg sync.WaitGroup
		for _, idx := range order {
			wg.Add(1)
			go func(idx, round int) {
				defer wg.Done()
				id := fmt.Sprintf("device-%03d", idx)
				rng := rand.New(rand.NewSource(*seed*1_000_003 + int64(idx)*31 + int64(round)))
				for _, a := range apps {
					if rng.Float64() < *drop {
						mu.Lock()
						dropped++
						mu.Unlock()
						logf("%s round %d %s: upload dropped", id, round, a.Params.Name)
						continue
					}
					if *jitter > 0 {
						time.Sleep(time.Duration(rng.Int63n(int64(*jitter))))
					}
					sk := fleet.BuildDeviceSketch(a, id, round)
					err := c.PostProfile(ctx, sk.Encode())
					for err != nil {
						apiErr, ok := err.(*server.APIError)
						if !ok || !apiErr.Retryable || ctx.Err() != nil {
							fatal(fmt.Errorf("%s round %d %s: %w", id, round, a.Params.Name, err))
						}
						mu.Lock()
						rejected++
						mu.Unlock()
						wait := apiErr.RetryAfter
						if wait <= 0 {
							wait = time.Second
						}
						logf("%s round %d %s: shed (429), retrying in %s", id, round, a.Params.Name, wait)
						time.Sleep(wait)
						err = c.PostProfile(ctx, sk.Encode())
					}
					mu.Lock()
					sent++
					mu.Unlock()
					logf("%s round %d %s: %d bytes accepted", id, round, a.Params.Name, len(sk.Encode()))
				}
			}(idx, round)
		}
		wg.Wait()
		fmt.Printf("round %d/%d: %d sketches accepted, %d dropped, %d shed-retries\n",
			round, *rounds, sent, dropped, rejected)
	}

	status, err := c.Fleet(ctx)
	if err != nil {
		fatal(err)
	}
	sort.Slice(status, func(i, j int) bool { return status[i].App < status[j].App })
	for _, as := range status {
		fmt.Printf("consensus %s: rev %d, %d sketches, ~%.0f devices, %d keys, digest %s\n",
			as.App, as.Revision, as.Sketches, as.Devices, as.Keys, as.Digest)
	}

	if !*converge {
		return
	}
	for _, a := range apps {
		st, err := c.Submit(ctx, server.SubmitRequest{Kind: server.KindFleet, App: a.Params.Name, Quick: *quick})
		if err != nil {
			fatal(err)
		}
		st, err = c.Wait(ctx, st.ID, *timeout)
		if err != nil {
			fatal(err)
		}
		if st.State != server.StateSucceeded {
			fatal(fmt.Errorf("fleet job %s for %s %s: %s", st.ID, a.Params.Name, st.State, st.Error))
		}
		res, err := c.Result(ctx, st.ID)
		if err != nil {
			fatal(err)
		}
		printText(res)
	}
}

// printText prints the "text" field of a result document, falling back to
// the raw JSON.
func printText(res []byte) {
	var doc struct {
		Text string `json:"text"`
	}
	if err := json.Unmarshal(res, &doc); err == nil && doc.Text != "" {
		fmt.Print(doc.Text)
		return
	}
	os.Stdout.Write(res)
	fmt.Println()
}
