// Command criticdump assembles an app model into an actual binary image and
// prints annotated disassembly — before and after the CritIC pass — so the
// layout transformation (hoisted chains, CDP prefixes, Thumb runs, format
// padding) can be inspected byte by byte.
//
// Usage:
//
//	criticdump -app acrobat -func 40          # one function, before/after
//	criticdump -app maps -verify              # round-trip the whole binary
package main

import (
	"flag"
	"fmt"
	"os"

	"critics/internal/binimg"
	"critics/internal/compiler"
	"critics/internal/exp"
	"critics/internal/prog"
	"critics/internal/telemetry"
	"critics/internal/workload"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	var (
		app     = flag.String("app", "acrobat", "app to dump")
		fnID    = flag.Int("func", -1, "function id to disassemble (-1: first function with a converted chain)")
		verify  = flag.Bool("verify", false, "verify assemble/decode round trip of baseline and CritIC binaries")
		version = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(telemetry.PrintVersion("criticdump"))
		return
	}

	a, ok := workload.FindApp(*app)
	if !ok {
		fail(fmt.Errorf("unknown app %q", *app))
	}
	ctx := exp.QuickContext()
	p := ctx.Program(a)
	prof := ctx.Profile(a, false, 1)
	q, st, err := compiler.ApplyCritIC(p, prof, compiler.Options{MaxLen: 5, Switch: compiler.SwitchCDP})
	if err != nil {
		fail(err)
	}

	if *verify {
		if err := binimg.VerifyRoundTrip(p); err != nil {
			fail(fmt.Errorf("baseline: %w", err))
		}
		if err := binimg.VerifyRoundTrip(q); err != nil {
			fail(fmt.Errorf("critic: %w", err))
		}
		fmt.Printf("round trip OK: baseline and CritIC binaries of %s assemble and decode exactly\n", *app)
		fmt.Printf("pass: %v\n", st)
		return
	}

	if *fnID < 0 {
		*fnID = firstConvertedFunc(q)
	}
	imgP, err := binimg.Assemble(p)
	if err != nil {
		fail(err)
	}
	imgQ, err := binimg.Assemble(q)
	if err != nil {
		fail(err)
	}
	before, err := binimg.Listing(p, imgP, *fnID)
	if err != nil {
		fail(err)
	}
	after, err := binimg.Listing(q, imgQ, *fnID)
	if err != nil {
		fail(err)
	}
	fmt.Printf("==== %s: function %d, baseline (%d bytes total) ====\n%s\n", *app, *fnID, len(imgP), before)
	fmt.Printf("==== %s: function %d, after CritIC (%d bytes total) ====\n%s", *app, *fnID, len(imgQ), after)
}

// firstConvertedFunc finds the first function containing a converted chain
// (a tagged instruction), falling back to function 0.
func firstConvertedFunc(p *prog.Program) int {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].ChainID != 0 {
					return f.ID
				}
			}
		}
	}
	return 0
}
