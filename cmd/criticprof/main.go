// Command criticprof runs the offline CritIC profiler on one app and writes
// the profile as JSON — the artifact the paper's Spark post-processing step
// produced (§III-C), consumed by the compiler pass.
//
// Usage:
//
//	criticprof -app acrobat -o acrobat.critic.json
//	criticprof -app maps            # summary to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"critics"
	"critics/internal/telemetry"
	"critics/internal/trace"
)

func main() {
	var (
		app      = flag.String("app", "", "app to profile (required)")
		out      = flag.String("o", "", "output file for the JSON profile (default: summary only)")
		traceOut = flag.String("trace", "", "also dump a raw instruction trace to this file")
		traceN   = flag.Int("trace-n", 100_000, "dynamic instructions to dump with -trace")
		quick    = flag.Bool("quick", false, "reduced profiling windows")
		top      = flag.Int("top", 10, "number of top chains to print")
		version  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(telemetry.PrintVersion("criticprof"))
		return
	}
	if *app == "" {
		flag.Usage()
		os.Exit(2)
	}
	var opts []critics.Option
	if *quick {
		opts = append(opts, critics.WithQuickScale())
	}
	prof, err := critics.BuildProfile(*app, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("app %s: %d dynamic instructions profiled\n", prof.App, prof.TotalDyn)
	fmt.Printf("  %d unique chain candidates, %d selected, coverage %.1f%%\n",
		prof.UniqueChains(), len(prof.Selected()), 100*prof.SelectedCoverage)
	fmt.Printf("  16-bit representable: %.1f%% of candidates\n", 100*prof.ThumbRepresentableFrac())
	fmt.Printf("  top chains by dynamic coverage:\n")
	for i, e := range prof.Selected() {
		if i >= *top {
			break
		}
		fmt.Printf("    %-24s len=%d execs=%-6d avgFanout=%.1f thumb=%v\n",
			e.Key, e.Length, e.DynCount, e.AvgFanout, e.ThumbOK)
	}
	if *traceOut != "" {
		dyns, err := critics.TraceSample(*app, *traceN)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := trace.WriteTrace(f, dyns); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace of %d instructions written to %s\n", len(dyns), *traceOut)
	}
	if *out != "" {
		data, err := json.MarshalIndent(prof, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("profile written to %s (%d bytes)\n", *out, len(data))
	}
}
