package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"critics/internal/server"
)

// benchOptions parameterize one bench run.
type benchOptions struct {
	N       int           // total jobs
	Conc    int           // concurrent submitters
	App     string        // app to optimize
	Quick   bool          // reduced-scale windows
	Timeout time.Duration // overall deadline
}

// benchResult is what a bench run measured.
type benchResult struct {
	OK        int             // jobs that reached succeeded
	Retries   int             // queue-full (429) resubmissions
	Wall      time.Duration   // first submit → last terminal status
	Latencies []time.Duration // per-succeeded-job submit→terminal, sorted ascending
	Errors    []error         // submit/wait failures (not job failures)
}

// JobsPerSecond is the succeeded-job throughput over the wall clock.
func (r benchResult) JobsPerSecond() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.OK) / r.Wall.Seconds()
}

// runBench fires opts.N jobs with opts.Conc submitters and measures per-job
// latency (submit → terminal). Queue-full rejections are retried after the
// server's Retry-After hint (plus a small per-submitter jitter so a fleet of
// rejected submitters doesn't return in lockstep), so bench doubles as an
// admission-control exerciser. errw receives per-job error lines as they
// happen; nil discards them.
func runBench(ctx context.Context, c *server.Client, opts benchOptions, errw io.Writer) benchResult {
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	if errw == nil {
		errw = io.Discard
	}

	type outcome struct {
		latency time.Duration
		state   server.JobState
		retries int
		err     error
	}
	results := make([]outcome, opts.N)
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(opts.Conc, 1))
	start := time.Now()
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			var st server.JobStatus
			var err error
			for {
				st, err = c.Submit(ctx, server.SubmitRequest{Kind: server.KindOptimize, App: opts.App, Quick: opts.Quick})
				var apiErr *server.APIError
				if errors.As(err, &apiErr) && apiErr.Code == 429 {
					results[i].retries++
					select {
					case <-ctx.Done():
						results[i].err = ctx.Err()
						return
					case <-time.After(apiErr.RetryAfter + time.Duration(i%7)*13*time.Millisecond):
					}
					continue
				}
				break
			}
			if err != nil {
				results[i].err = err
				return
			}
			st, err = c.Wait(ctx, st.ID, 0)
			results[i].err = err
			results[i].state = st.State
			results[i].latency = time.Since(t0)
		}(i)
	}
	wg.Wait()

	res := benchResult{Wall: time.Since(start)}
	for _, r := range results {
		res.Retries += r.retries
		switch {
		case r.err == nil && r.state == server.StateSucceeded:
			res.OK++
			res.Latencies = append(res.Latencies, r.latency)
		case r.err != nil:
			res.Errors = append(res.Errors, r.err)
			fmt.Fprintln(errw, "criticctl: bench job:", r.err)
		}
	}
	sort.Slice(res.Latencies, func(i, j int) bool { return res.Latencies[i] < res.Latencies[j] })
	return res
}

// formatBench renders the result the way cmdBench prints it.
func formatBench(opts benchOptions, r benchResult) string {
	out := fmt.Sprintf("bench: %d/%d jobs succeeded in %.2fs (%.2f jobs/s), %d queue-full retries\n",
		r.OK, opts.N, r.Wall.Seconds(), r.JobsPerSecond(), r.Retries)
	if len(r.Latencies) > 0 {
		out += fmt.Sprintf("latency: p50=%.3fs p90=%.3fs p99=%.3fs max=%.3fs\n",
			pct(r.Latencies, 50).Seconds(), pct(r.Latencies, 90).Seconds(), pct(r.Latencies, 99).Seconds(),
			r.Latencies[len(r.Latencies)-1].Seconds())
	}
	return out
}

// pct returns the p-th percentile of sorted durations (nearest-rank).
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*p + 99) / 100
	if i < 1 {
		i = 1
	}
	return sorted[i-1]
}
