package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"critics/internal/obs"
	"critics/internal/server"
)

// sloTargets collects repeated -target flags.
type sloTargets []string

func (t *sloTargets) String() string     { return strings.Join(*t, ",") }
func (t *sloTargets) Set(v string) error { *t = append(*t, v); return nil }

// cmdSLO scrapes the daemon's /metrics, estimates the requested stage
// quantiles from the critics_slo_stage_seconds histograms, and asserts them
// against the targets. Exit 0 when every target holds, 1 on any violation
// (each printed with the exemplar trace id of a concrete offending job),
// 2 on malformed targets.
func cmdSLO(ctx context.Context, c *server.Client, args []string) {
	fs := flag.NewFlagSet("slo", flag.ExitOnError)
	var raw sloTargets
	fs.Var(&raw, "target", "SLO assertion stage:pN<=duration (repeatable), e.g. -target e2e:p95<=2.5s -target queue_wait:p50<=100ms")
	_ = fs.Parse(args)
	raw = append(raw, fs.Args()...) // bare args are targets too
	if len(raw) == 0 {
		fmt.Fprintln(os.Stderr, "criticctl slo: at least one -target stage:pN<=duration required")
		fmt.Fprintln(os.Stderr, "stages: queue_wait, dispatch_rtt, compute, e2e")
		os.Exit(2)
	}
	targets := make([]obs.Target, 0, len(raw))
	for _, s := range raw {
		tg, err := obs.ParseTarget(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "criticctl slo:", err)
			os.Exit(2)
		}
		targets = append(targets, tg)
	}

	text, err := c.MetricsText(ctx)
	if err != nil {
		fatal(err)
	}
	stages := obs.ParseStageHistograms(text, obs.SLOFamily, "stage")
	violations, err := obs.Evaluate(targets, stages)
	if err != nil {
		fatal(err)
	}
	for _, tg := range targets {
		cdf := stages[tg.Stage]
		fmt.Printf("%-12s p%-4g %s  (target %s, %d observations)\n",
			tg.Stage, tg.Q*100, fmtSeconds(cdf.Quantile(tg.Q)), fmtSeconds(tg.Bound), cdf.Count())
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "SLO VIOLATION:", v)
		}
		os.Exit(1)
	}
	fmt.Println("all SLO targets met")
}

// cmdTop prints a one-shot fleet snapshot assembled from /metrics (queue,
// jobs, stage latencies) plus the coordinator's worker list when
// distribution is on.
func cmdTop(ctx context.Context, c *server.Client, args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	_ = fs.Parse(args)

	text, err := c.MetricsText(ctx)
	if err != nil {
		fatal(err)
	}
	val := func(name string) float64 {
		v, _ := obs.MetricValue(text, name, nil)
		return v
	}
	outcome := func(o string) float64 {
		v, _ := obs.MetricValue(text, "critics_server_jobs_total", map[string]string{"outcome": o})
		return v
	}
	fmt.Printf("jobs      queued=%.0f inflight=%.0f  succeeded=%.0f failed=%.0f canceled=%.0f rejected=%.0f\n",
		val("critics_server_queue_depth"), val("critics_server_inflight_jobs"),
		outcome("succeeded"), outcome("failed"), outcome("canceled"), outcome("rejected"))

	stages := obs.ParseStageHistograms(text, obs.SLOFamily, "stage")
	names := make([]string, 0, len(stages))
	for n := range stages {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Println("\nstage         count       p50       p95       p99")
		for _, n := range names {
			cdf := stages[n]
			fmt.Printf("%-12s %6d %9s %9s %9s\n", n, cdf.Count(),
				fmtSeconds(cdf.Quantile(0.50)), fmtSeconds(cdf.Quantile(0.95)), fmtSeconds(cdf.Quantile(0.99)))
		}
	}

	if ws, err := c.DistWorkers(ctx); err == nil {
		fmt.Printf("\nworkers   healthy=%.0f\n", val("critics_dist_workers_healthy"))
		for _, w := range ws {
			health := "healthy"
			if !w.Healthy {
				health = "UNHEALTHY"
			}
			fmt.Printf("  %s  %s  inflight=%d done=%d failures=%d\n",
				w.URL, health, w.Inflight, w.TasksDone, w.Failures)
		}
	}
}

// fmtSeconds renders a latency bound compactly (µs/ms/s by magnitude).
func fmtSeconds(s float64) string {
	switch {
	case math.IsNaN(s):
		return "-"
	case math.IsInf(s, 1):
		return "+Inf"
	case s < 0.001:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.3gms", s*1e3)
	default:
		return fmt.Sprintf("%.3gs", s)
	}
}
