package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"critics"
	"critics/internal/artifact"
	"critics/internal/scan"
	"critics/internal/server"
)

// scanChunkSize is the trace-file chunking criticctl uses when it generates
// the trace itself (-app mode). Fixed so local and daemon-dispatched scans
// of the same inputs are byte-identical.
const scanChunkSize = 1024

// cmdScan runs a source-free scan: score missed CritIC opportunities in a
// binary image against a dynamic trace, without the source program. Inputs
// are either real files (-image/-trace, the production path) or assembled
// from a catalog app (-app/-instrs, the self-contained demo and smoke path).
// The default dispatches through the daemon — artifacts are chunk-uploaded
// by digest and the scan may fan out across a dist fleet; -local computes
// in-process, producing the identical report.
func cmdScan(ctx context.Context, c *server.Client, args []string) {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	var (
		app        = fs.String("app", "", "assemble this catalog app's binary image + trace as the scan inputs")
		instrs     = fs.Int("instrs", 30000, "trace length to generate with -app, dynamic instructions")
		imageFile  = fs.String("image", "", "binary image file to scan (with -trace; overrides -app)")
		traceFile  = fs.String("trace", "", "trace file (scan.WriteTrace format) for -image")
		local      = fs.Bool("local", false, "compute in-process instead of dispatching to the daemon")
		chunkBytes = fs.Int("chunk-bytes", 0, "upload chunk size in bytes (0 = server max); small values exercise resumable chunking")
		timeout    = fs.Duration("timeout", 5*time.Minute, "give up waiting for the job after this long")
	)
	_ = fs.Parse(args)

	img, trc, err := scanInputs(*app, *imageFile, *traceFile, *instrs)
	if err != nil {
		fatal(err)
	}

	if *local {
		rep, err := scan.Run(bytes.NewReader(img), bytes.NewReader(trc),
			artifact.Sum(img), artifact.Sum(trc), scan.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Text())
		return
	}

	imgDigest, err := c.UploadArtifact(ctx, img, *chunkBytes)
	if err != nil {
		fatal(fmt.Errorf("uploading image: %w", err))
	}
	trcDigest, err := c.UploadArtifact(ctx, trc, *chunkBytes)
	if err != nil {
		fatal(fmt.Errorf("uploading trace: %w", err))
	}
	fmt.Fprintf(os.Stderr, "uploaded image %s (%d bytes), trace %s (%d bytes)\n",
		imgDigest, len(img), trcDigest, len(trc))

	st, err := c.Submit(ctx, server.SubmitRequest{
		Kind:        server.KindScan,
		ImageDigest: imgDigest,
		TraceDigest: trcDigest,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "scan job %s submitted\n", st.ID)
	st, err = c.Wait(ctx, st.ID, *timeout)
	if err != nil {
		fatal(err)
	}
	if st.State != server.StateSucceeded {
		fatal(fmt.Errorf("scan job %s %s: %s", st.ID, st.State, st.Error))
	}
	res, err := c.Result(ctx, st.ID)
	if err != nil {
		fatal(err)
	}
	printResultText(res)
}

// scanInputs resolves the image and trace bytes from the flag combination.
func scanInputs(app, imageFile, traceFile string, instrs int) (img, trc []byte, err error) {
	switch {
	case imageFile != "" || traceFile != "":
		if imageFile == "" || traceFile == "" {
			return nil, nil, fmt.Errorf("-image and -trace must be given together")
		}
		if img, err = os.ReadFile(imageFile); err != nil {
			return nil, nil, err
		}
		if trc, err = os.ReadFile(traceFile); err != nil {
			return nil, nil, err
		}
		return img, trc, nil
	case app != "":
		var addrs []uint32
		if img, addrs, err = critics.ScanInputs(app, instrs); err != nil {
			return nil, nil, err
		}
		return img, scan.TraceBytes(addrs, scanChunkSize), nil
	default:
		return nil, nil, fmt.Errorf("scan needs -app NAME or -image FILE -trace FILE")
	}
}

// cmdArtifacts is the store-management surface: list, stat <digest>, gc.
func cmdArtifacts(ctx context.Context, c *server.Client, args []string) {
	if len(args) < 1 {
		fatal(fmt.Errorf("usage: criticctl artifacts <list|stat <digest>|gc>"))
	}
	switch sub, rest := args[0], args[1:]; sub {
	case "list":
		infos, err := c.ArtifactList(ctx)
		if err != nil {
			fatal(err)
		}
		writeArtifactList(os.Stdout, infos)
	case "stat":
		if len(rest) < 1 {
			fatal(fmt.Errorf("usage: criticctl artifacts stat <digest>"))
		}
		info, err := c.ArtifactStat(ctx, rest[0])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s  %d bytes  tier=%s  refs=%d\n", info.Digest, info.Size, info.Tier, info.Refs)
	case "gc":
		res, err := c.ArtifactGC(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("gc removed %d artifacts, freed %d bytes\n", res.Removed, res.Freed)
	default:
		fatal(fmt.Errorf("unknown artifacts subcommand %q (list, stat, gc)", sub))
	}
}

// writeArtifactList renders the store listing; split from cmdArtifacts so
// tests can capture it.
func writeArtifactList(w io.Writer, infos []artifact.Info) {
	if len(infos) == 0 {
		fmt.Fprintln(w, "artifact store is empty")
		return
	}
	var total int64
	for _, info := range infos {
		fmt.Fprintf(w, "%s  %10d bytes  tier=%-4s refs=%d\n", info.Digest, info.Size, info.Tier, info.Refs)
		total += info.Size
	}
	fmt.Fprintf(w, "%d artifacts, %d bytes\n", len(infos), total)
}
