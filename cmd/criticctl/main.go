// Command criticctl is the client for criticd, the profiling-and-
// optimization daemon.
//
// Usage:
//
//	criticctl [-addr http://host:port] <command> [flags]
//
//	criticctl submit -app acrobat -quick -wait     # run and print the report
//	criticctl submit -exp fig10a                   # enqueue, print the job id
//	criticctl status j000001
//	criticctl wait j000001 -timeout 2m
//	criticctl result j000001 -o result.json
//	criticctl cancel j000001
//	criticctl bench -n 16 -c 4 -app acrobat -quick # throughput + latency
//	criticctl scan -app acrobat                    # source-free missed-CritIC scan
//	criticctl scan -app acrobat -local             # same report, computed in-process
//	criticctl artifacts list                       # content-addressed store contents
//	criticctl workers                              # dist fleet status
//	criticctl fleet status                         # device-fleet consensus state
//	criticctl fleet converge acrobat               # run the fleet PGO optimizer
//	criticctl apps
//	criticctl experiments
//
// The daemon address comes from -addr or $CRITICD_ADDR (default
// http://127.0.0.1:9720).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"critics/internal/server"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: criticctl [-addr URL] <command> [flags]

commands:
  submit       submit a job (-app or -exp; -wait to block for the result)
  status       print one job's status        (criticctl status <id>)
  result       print a succeeded job's result (criticctl result <id> [-o file])
  wait         poll until the job finishes    (criticctl wait <id> [-timeout d])
  cancel       cancel a queued or running job (criticctl cancel <id>)
  bench        fire N concurrent jobs and report throughput and latency
  workers      print the distributed-execution fleet status (-dist daemons)
  trace        fetch a job's span tree   (criticctl trace <id> [-chrome] [-o file])
  events       print flight-recorder events (criticctl events [-job id])
  scan         source-free scan of a binary image + trace for missed CritICs
               (-app NAME to assemble one, or -image/-trace files; -local
               computes in-process and is byte-identical to daemon dispatch)
  artifacts    content-addressed store: list, stat <digest>, gc
  fleet        fleet PGO loop: status, converge <app> (see criticfleet for devices)
  slo          assert stage latency quantiles (criticctl slo -target e2e:p95<=2.5s)
  top          one-shot fleet snapshot: jobs, stage latencies, workers
  apps         list the workload catalog
  experiments  list runnable experiment ids
`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "criticctl:", err)
	os.Exit(1)
}

func main() {
	defaultAddr := os.Getenv("CRITICD_ADDR")
	if defaultAddr == "" {
		defaultAddr = "http://127.0.0.1:9720"
	}
	addr := flag.String("addr", defaultAddr, "criticd base URL (or $CRITICD_ADDR)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	c := server.NewClient(*addr)
	ctx := context.Background()
	cmd, args := flag.Arg(0), flag.Args()[1:]

	switch cmd {
	case "submit":
		cmdSubmit(ctx, c, args)
	case "status":
		id, fs := idArg("status", args)
		_ = fs
		st, err := c.Status(ctx, id)
		if err != nil {
			fatal(err)
		}
		printStatus(st)
	case "result":
		fs := flag.NewFlagSet("result", flag.ExitOnError)
		out := fs.String("o", "", "write the raw result JSON to this file instead of stdout")
		id := parseID(fs, args)
		res, err := c.Result(ctx, id)
		if err != nil {
			fatal(err)
		}
		if *out != "" {
			if err := os.WriteFile(*out, res, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("result written to %s (%d bytes)\n", *out, len(res))
			return
		}
		printResultText(res)
	case "wait":
		fs := flag.NewFlagSet("wait", flag.ExitOnError)
		timeout := fs.Duration("timeout", 10*time.Minute, "give up after this long (0 = forever)")
		id := parseID(fs, args)
		st, err := c.Wait(ctx, id, *timeout)
		if err != nil {
			fatal(err)
		}
		printStatus(st)
		if st.State != server.StateSucceeded {
			os.Exit(1)
		}
	case "cancel":
		id, _ := idArg("cancel", args)
		st, err := c.Cancel(ctx, id)
		if err != nil {
			fatal(err)
		}
		printStatus(st)
	case "bench":
		cmdBench(ctx, c, args)
	case "workers":
		cmdWorkers(ctx, c)
	case "trace":
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		chrome := fs.Bool("chrome", false, "Chrome trace-event export (Perfetto-loadable) instead of the span tree")
		out := fs.String("o", "", "write to this file instead of stdout")
		id := parseID(fs, args)
		format := ""
		if *chrome {
			format = "chrome"
		}
		raw, err := c.Trace(ctx, id, format)
		if err != nil {
			fatal(err)
		}
		if *out != "" {
			if err := os.WriteFile(*out, raw, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("trace written to %s (%d bytes)\n", *out, len(raw))
			return
		}
		os.Stdout.Write(raw)
	case "events":
		fs := flag.NewFlagSet("events", flag.ExitOnError)
		jobID := fs.String("job", "", "filter to one job's events")
		_ = fs.Parse(args)
		raw, err := c.Events(ctx, *jobID)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(raw)
		fmt.Println()
	case "scan":
		cmdScan(ctx, c, args)
	case "artifacts":
		cmdArtifacts(ctx, c, args)
	case "fleet":
		cmdFleet(ctx, c, args)
	case "slo":
		cmdSLO(ctx, c, args)
	case "top":
		cmdTop(ctx, c, args)
	case "apps":
		suites, err := c.Apps(ctx)
		if err != nil {
			fatal(err)
		}
		names := make([]string, 0, len(suites))
		for s := range suites {
			names = append(names, s)
		}
		sort.Strings(names)
		for _, s := range names {
			fmt.Printf("%s:\n", s)
			for _, a := range suites[s] {
				fmt.Printf("  %s\n", a)
			}
		}
	case "experiments":
		ids, err := c.Experiments(ctx)
		if err != nil {
			fatal(err)
		}
		for _, id := range ids {
			fmt.Println(id)
		}
	default:
		fmt.Fprintf(os.Stderr, "criticctl: unknown command %q\n\n", cmd)
		usage()
	}
}

// idArg parses "<command> <id>" with no extra flags.
func idArg(name string, args []string) (string, *flag.FlagSet) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return parseID(fs, args), fs
}

// parseID accepts the job id before or after the subcommand flags.
func parseID(fs *flag.FlagSet, args []string) string {
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		_ = fs.Parse(args[1:])
		return args[0]
	}
	_ = fs.Parse(args)
	if fs.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "criticctl: missing job id")
		os.Exit(2)
	}
	return fs.Arg(0)
}

func printStatus(st server.JobStatus) {
	fmt.Printf("job %s  kind=%s", st.ID, st.Kind)
	if st.App != "" {
		fmt.Printf(" app=%s", st.App)
	}
	if st.Experiment != "" {
		fmt.Printf(" exp=%s", st.Experiment)
	}
	fmt.Printf("  state=%s", st.State)
	if d := st.Duration(); d > 0 {
		fmt.Printf("  elapsed=%.2fs", d.Seconds())
	}
	if st.Error != "" {
		fmt.Printf("  error=%q retryable=%v", st.Error, st.Retryable)
	}
	fmt.Println()
}

// printResultText prints the result's human-readable text (the full JSON
// document is available with result -o).
func printResultText(res []byte) {
	var doc server.Result
	if err := json.Unmarshal(res, &doc); err != nil || doc.Text == "" {
		os.Stdout.Write(res)
		fmt.Println()
		return
	}
	fmt.Print(doc.Text)
}

func cmdSubmit(ctx context.Context, c *server.Client, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		app     = fs.String("app", "", "app to optimize/profile/trace")
		expID   = fs.String("exp", "", "experiment id to run")
		kind    = fs.String("kind", "", "job kind: optimize (default with -app), profile, experiment (default with -exp), trace")
		quick   = fs.Bool("quick", false, "reduced-scale windows")
		workers = fs.Int("workers", 0, "per-job shard pool bound (0 = daemon default)")
		measure = fs.Int("measure-instrs", 0, "measured window override, architectural instructions")
		timeout = fs.Duration("timeout", 0, "per-job deadline (0 = daemon default)")
		idemKey = fs.String("idempotency-key", "", "safe-retry key: resubmits return the existing job")
		wait    = fs.Bool("wait", false, "block until the job finishes and print its result")
		waitFor = fs.Duration("wait-timeout", 10*time.Minute, "give up waiting after this long (with -wait)")
	)
	_ = fs.Parse(args)
	req := server.SubmitRequest{
		Kind:           server.JobKind(*kind),
		App:            *app,
		Experiment:     *expID,
		Quick:          *quick,
		Workers:        *workers,
		MeasureInstrs:  *measure,
		TimeoutMS:      timeout.Milliseconds(),
		IdempotencyKey: *idemKey,
	}
	st, err := c.Submit(ctx, req)
	if err != nil {
		fatal(err)
	}
	printStatus(st)
	if !*wait {
		return
	}
	st, err = c.Wait(ctx, st.ID, *waitFor)
	if err != nil {
		fatal(err)
	}
	if st.State != server.StateSucceeded {
		printStatus(st)
		os.Exit(1)
	}
	res, err := c.Result(ctx, st.ID)
	if err != nil {
		fatal(err)
	}
	printResultText(res)
}

// cmdBench parses flags, delegates to runBench (bench.go) and prints the
// report.
func cmdBench(ctx context.Context, c *server.Client, args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		n       = fs.Int("n", 16, "total jobs")
		conc    = fs.Int("c", 4, "concurrent submitters")
		app     = fs.String("app", "acrobat", "app to optimize")
		quick   = fs.Bool("quick", true, "reduced-scale windows")
		timeout = fs.Duration("timeout", 10*time.Minute, "overall deadline")
	)
	_ = fs.Parse(args)
	opts := benchOptions{N: *n, Conc: *conc, App: *app, Quick: *quick, Timeout: *timeout}
	res := runBench(ctx, c, opts, os.Stderr)
	fmt.Print(formatBench(opts, res))
	if res.OK != opts.N {
		os.Exit(1)
	}
}

// cmdWorkers prints the coordinator's fleet status.
func cmdWorkers(ctx context.Context, c *server.Client) {
	ws, err := c.DistWorkers(ctx)
	if err != nil {
		fatal(err)
	}
	if len(ws) == 0 {
		fmt.Println("no workers registered")
		return
	}
	for _, w := range ws {
		health := "healthy"
		if !w.Healthy {
			health = "UNHEALTHY"
		}
		fmt.Printf("%s  %s  capacity=%d inflight=%d done=%d failures=%d\n",
			w.URL, health, w.Capacity, w.Inflight, w.TasksDone, w.Failures)
	}
}
