package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"critics/internal/server"
)

// cmdFleet implements "criticctl fleet <status|converge>".
func cmdFleet(ctx context.Context, c *server.Client, args []string) {
	if len(args) < 1 {
		fleetUsage()
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "status":
		fs := flag.NewFlagSet("fleet status", flag.ExitOnError)
		_ = fs.Parse(rest)
		apps, err := c.Fleet(ctx)
		if err != nil {
			fatal(err)
		}
		if len(apps) == 0 {
			fmt.Println("no fleet state: no device sketches ingested yet")
			return
		}
		fmt.Printf("%-12s %8s %8s %8s %6s  %-16s %s\n",
			"APP", "REV", "SKETCHES", "DEVICES", "KEYS", "CONSENSUS", "CONVERGE")
		for _, a := range apps {
			converge := "-"
			if a.Winner != "" {
				state := "running"
				if a.Converged {
					state = "converged"
				}
				converge = fmt.Sprintf("%s %s (%d gen, %d chains, %s)",
					state, a.Winner, a.Generations, a.SelectedChains, a.WinnerDigest)
			}
			fmt.Printf("%-12s %8d %8d %8.0f %6d  %-16s %s\n",
				a.App, a.Revision, a.Sketches, a.Devices, a.Keys, a.Digest, converge)
		}
	case "converge":
		fs := flag.NewFlagSet("fleet converge", flag.ExitOnError)
		quick := fs.Bool("quick", false, "reduced-scale windows (faster, noisier)")
		workers := fs.Int("workers", 0, "shard workers for the job (0 = server default)")
		timeout := fs.Duration("timeout", 10*time.Minute, "give up waiting after this long")
		app := ""
		if len(rest) > 0 && len(rest[0]) > 0 && rest[0][0] != '-' {
			app = rest[0]
			rest = rest[1:]
		}
		_ = fs.Parse(rest)
		if app == "" && fs.NArg() > 0 {
			app = fs.Arg(0)
		}
		if app == "" {
			fmt.Fprintln(os.Stderr, "criticctl: fleet converge requires an app name")
			fleetUsage()
		}
		st, err := c.Submit(ctx, server.SubmitRequest{
			Kind: server.KindFleet, App: app, Quick: *quick, Workers: *workers,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("job %s submitted (%s %s)\n", st.ID, st.Kind, st.App)
		st, err = c.Wait(ctx, st.ID, *timeout)
		if err != nil {
			fatal(err)
		}
		if st.State != server.StateSucceeded {
			fmt.Fprintf(os.Stderr, "criticctl: job %s %s: %s\n", st.ID, st.State, st.Error)
			os.Exit(1)
		}
		res, err := c.Result(ctx, st.ID)
		if err != nil {
			fatal(err)
		}
		printResultText(res)
	default:
		fmt.Fprintf(os.Stderr, "criticctl: unknown fleet subcommand %q\n\n", sub)
		fleetUsage()
	}
}

func fleetUsage() {
	fmt.Fprintf(os.Stderr, `usage: criticctl fleet <subcommand>

subcommands:
  status                  per-app consensus + converge state (GET /v1/fleet)
  converge <app> [flags]  run the iterative optimizer against the app's
                          fleet consensus and print the report
                          (-quick, -workers N, -timeout d)
`)
	os.Exit(2)
}
