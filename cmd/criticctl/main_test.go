package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"critics/internal/server"
)

func TestPct(t *testing.T) {
	ms := func(ns ...int) []time.Duration {
		out := make([]time.Duration, len(ns))
		for i, n := range ns {
			out[i] = time.Duration(n) * time.Millisecond
		}
		return out
	}
	cases := []struct {
		name   string
		sorted []time.Duration
		p      int
		want   time.Duration
	}{
		{"empty", nil, 50, 0},
		{"single p50", ms(100), 50, 100 * time.Millisecond},
		{"single p99", ms(100), 99, 100 * time.Millisecond},
		// Nearest-rank over 1..10: p50 → 5th value, p90 → 9th, p99 and p100
		// → 10th, p10 → 1st.
		{"ten p50", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 50, 5 * time.Millisecond},
		{"ten p90", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 90, 9 * time.Millisecond},
		{"ten p99", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 99, 10 * time.Millisecond},
		{"ten p100", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 100, 10 * time.Millisecond},
		{"ten p10", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 10, 1 * time.Millisecond},
		// p0 clamps to the first element rather than indexing out of range.
		{"p0 clamps", ms(7, 8), 0, 7 * time.Millisecond},
		{"two p75", ms(10, 20), 75, 20 * time.Millisecond},
	}
	for _, c := range cases {
		if got := pct(c.sorted, c.p); got != c.want {
			t.Errorf("%s: pct(%v, %d) = %v, want %v", c.name, c.sorted, c.p, got, c.want)
		}
	}
}

// TestRunBenchRetriesQueueFull drives runBench against a stub daemon whose
// first submissions answer 429 + Retry-After: the bench must honor the hint,
// resubmit, and count the retries — never report the job as failed.
func TestRunBenchRetriesQueueFull(t *testing.T) {
	var submits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if submits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"job queue full","retryable":true}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"j000001","kind":"optimize","app":"acrobat","state":"queued"}`))
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"` + r.PathValue("id") + `","kind":"optimize","app":"acrobat","state":"succeeded"}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := server.NewClient(srv.URL)
	var errLog strings.Builder
	opts := benchOptions{N: 3, Conc: 1, App: "acrobat", Quick: true, Timeout: 10 * time.Second}
	res := runBench(context.Background(), c, opts, &errLog)

	if res.OK != 3 {
		t.Fatalf("OK = %d, want 3 (errors: %v / %s)", res.OK, res.Errors, errLog.String())
	}
	if res.Retries != 2 {
		t.Fatalf("Retries = %d, want 2 (submits seen: %d)", res.Retries, submits.Load())
	}
	if len(res.Latencies) != 3 {
		t.Fatalf("Latencies = %v, want 3 entries", res.Latencies)
	}
	if got := submits.Load(); got != 5 {
		t.Fatalf("server saw %d submits, want 5 (3 jobs + 2 rejected attempts)", got)
	}

	out := formatBench(opts, res)
	if !strings.Contains(out, "3/3 jobs succeeded") || !strings.Contains(out, "2 queue-full retries") {
		t.Fatalf("formatBench output missing expected fields:\n%s", out)
	}
	if !strings.Contains(out, "p50=") || !strings.Contains(out, "p99=") {
		t.Fatalf("formatBench output missing percentiles:\n%s", out)
	}
}

// TestRunBenchSurfacesFailures: non-retryable submit errors land in Errors
// and do not hang the run.
func TestRunBenchSurfacesFailures(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"unknown app","retryable":false}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	res := runBench(context.Background(), server.NewClient(srv.URL),
		benchOptions{N: 2, Conc: 2, App: "nope", Timeout: 5 * time.Second}, nil)
	if res.OK != 0 || len(res.Errors) != 2 {
		t.Fatalf("OK=%d Errors=%v, want 0 and 2 errors", res.OK, res.Errors)
	}
}
