package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"critics/internal/artifact"
	"critics/internal/server"
)

// TestArtifactClientAgainstStub exercises the artifacts client surface
// (list/stat/gc) against a stub daemon, plus the listing renderer the
// subcommand prints.
func TestArtifactClientAgainstStub(t *testing.T) {
	const digest = "sha256:0000000000000000000000000000000000000000000000000000000000000001"
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/artifacts", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"artifacts":[{"digest":"` + digest + `","size":4096,"refs":1,"tier":"mem"}]}`))
	})
	mux.HandleFunc("GET /v1/artifacts/{digest}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("digest") != digest {
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error":"no artifact"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"digest":"` + digest + `","size":4096,"refs":1,"tier":"mem"}`))
	})
	mux.HandleFunc("POST /v1/artifacts/gc", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"removed":3,"freed":12288}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := server.NewClient(srv.URL)
	ctx := context.Background()

	infos, err := c.ArtifactList(ctx)
	if err != nil {
		t.Fatalf("ArtifactList: %v", err)
	}
	if len(infos) != 1 || infos[0].Digest != digest || infos[0].Size != 4096 || infos[0].Tier != "mem" {
		t.Fatalf("ArtifactList = %+v", infos)
	}

	info, err := c.ArtifactStat(ctx, digest)
	if err != nil || info.Refs != 1 {
		t.Fatalf("ArtifactStat = (%+v, %v)", info, err)
	}
	if _, err := c.ArtifactStat(ctx, "sha256:"+strings.Repeat("f", 64)); err == nil {
		t.Fatal("stat of a missing digest succeeded, want 404 error")
	}

	gc, err := c.ArtifactGC(ctx)
	if err != nil || gc.Removed != 3 || gc.Freed != 12288 {
		t.Fatalf("ArtifactGC = (%+v, %v)", gc, err)
	}

	var b strings.Builder
	writeArtifactList(&b, infos)
	out := b.String()
	if !strings.Contains(out, digest) || !strings.Contains(out, "1 artifacts, 4096 bytes") {
		t.Fatalf("listing output missing fields:\n%s", out)
	}
	b.Reset()
	writeArtifactList(&b, nil)
	if !strings.Contains(b.String(), "empty") {
		t.Fatalf("empty listing = %q", b.String())
	}
}

// TestScanInputsFlagValidation: the flag combinations that cannot work must
// error before any network traffic.
func TestScanInputsFlagValidation(t *testing.T) {
	if _, _, err := scanInputs("", "", "", 0); err == nil {
		t.Fatal("no inputs accepted")
	}
	if _, _, err := scanInputs("", "img-only", "", 0); err == nil {
		t.Fatal("-image without -trace accepted")
	}
	if _, _, err := scanInputs("no-such-app", "", "", 100); err == nil {
		t.Fatal("unknown app accepted")
	}
	img, trc, err := scanInputs("acrobat", "", "", 500)
	if err != nil {
		t.Fatalf("catalog app inputs: %v", err)
	}
	if len(img) == 0 || len(trc) == 0 {
		t.Fatalf("empty inputs: image %d bytes, trace %d bytes", len(img), len(trc))
	}
	if err := artifact.Validate(artifact.Sum(img)); err != nil {
		t.Fatalf("image digest invalid: %v", err)
	}
}
