// Command criticsim reproduces the paper's evaluation: it runs any table or
// figure experiment by id and prints the same rows/series the paper reports.
//
// Usage:
//
//	criticsim -list
//	criticsim -exp fig10a
//	criticsim -all
//	criticsim -app acrobat          # end-to-end single-app report
//	criticsim -exp fig11a -quick    # reduced windows
//	criticsim -all -workers 8 -cache-stats
//
// Observability:
//
//	criticsim -app acrobat -quick -trace-out /tmp/t.json   # Chrome trace (Perfetto)
//	criticsim -all -metrics-addr :9120                     # /metrics + /debug/pprof
//	criticsim -all -v                                      # structured progress log
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"critics"
	"critics/internal/telemetry"
)

func main() {
	var (
		expID       = flag.String("exp", "", "experiment id to run (see -list)")
		all         = flag.Bool("all", false, "run every experiment")
		list        = flag.Bool("list", false, "list experiment ids")
		app         = flag.String("app", "", "run the end-to-end pipeline on one app")
		quick       = flag.Bool("quick", false, "reduced window sizes")
		measureArch = flag.Int("measure-arch", 0, "measured window size in architectural instructions (0 = scale default; the streaming pipeline holds memory constant as this grows)")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial; results identical)")
		l1iPolicy   = flag.String("l1i-policy", "", "L1I replacement policy for -app runs (empty = lru baseline; see fig-frontend)")
		codeLayout  = flag.String("code-layout", "", "profile-guided code-layout pass for -app runs (empty = program order)")
		cacheStats  = flag.Bool("cache-stats", false, "print memo-cache hit/miss counters after the run")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address while running")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON file (open in Perfetto / chrome://tracing)")
		verbose     = flag.Bool("v", false, "structured progress log on stderr")
	)
	flag.Parse()

	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// The registry is always attached: it is free until scraped, and keeps
	// -cache-stats and /metrics reading the same counters.
	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg, "criticsim")
	var opts []critics.Option
	if *quick {
		opts = append(opts, critics.WithQuickScale())
	}
	if *measureArch > 0 {
		// After -quick so an explicit window wins over the scale preset.
		opts = append(opts, critics.WithMeasureInstrs(*measureArch))
	}
	if *l1iPolicy != "" || *codeLayout != "" {
		if *l1iPolicy != "" {
			requireValidName("L1I policy", *l1iPolicy, critics.FrontendPolicies())
		}
		if *codeLayout != "" {
			requireValidName("code layout", *codeLayout, critics.CodeLayouts())
		}
		opts = append(opts, critics.WithFrontend(*l1iPolicy, *codeLayout))
	}
	opts = append(opts, critics.WithWorkers(*workers), critics.WithTelemetry(reg))

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("serving metrics", "addr", *metricsAddr)
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				logger.Error("metrics server failed", "err", err)
			}
		}()
	}

	// openTrace attaches an engine-span tracer for experiment runs (-app
	// runs stream richer pipeline timelines through critics.TraceApp
	// instead).
	openTrace := func() (*telemetry.Tracer, *os.File) {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr := telemetry.NewTracer(f)
		tr.MetaProcessName(telemetry.EnginePID, "engine (wall-clock µs)")
		return tr, f
	}
	closeTrace := func(tr *telemetry.Tracer, f *os.File) {
		if err := tr.Close(); err == nil {
			err = f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			logger.Info("trace written", "path", *traceOut)
		} else {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	switch {
	case *list:
		for _, id := range critics.ExperimentIDs() {
			fmt.Println(id)
		}
	case *app != "":
		// Validate before any side effect (notably the -trace-out file) so
		// a typo fails cleanly with the valid names and nothing half-created.
		requireValidName("app", *app, critics.AppNames())
		start := time.Now()
		var (
			rep *critics.Report
			err error
		)
		if *traceOut != "" {
			var f *os.File
			f, err = os.Create(*traceOut)
			if err == nil {
				rep, err = critics.TraceApp(*app, f, opts...)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err == nil {
					logger.Info("trace written", "path", *traceOut)
				}
			}
		} else {
			rep, err = critics.OptimizeApp(*app, opts...)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		logger.Info("app optimized", "app", *app, "speedup_pct", rep.SpeedupPct,
			"seconds", time.Since(start).Seconds())
		fmt.Print(rep)
	case *all:
		var tracer *telemetry.Tracer
		var traceFile *os.File
		if *traceOut != "" {
			tracer, traceFile = openTrace()
			opts = append(opts, critics.WithTracer(tracer))
		}
		// fig3a/b/c share a runner, as do fig10a/b/c and fig11a/b; run
		// each runner once. A session caches programs/profiles/variants
		// and measurements across experiments.
		sess := critics.NewSession(opts...)
		ran := map[string]bool{}
		dedup := map[string]string{
			"fig3b": "fig3a", "fig3c": "fig3a",
			"fig10b": "fig10a", "fig10c": "fig10a",
			"fig11b": "fig11a",
			"fig13b": "fig13a",
		}
		for _, id := range critics.ExperimentIDs() {
			canon := id
			if c, ok := dedup[id]; ok {
				canon = c
			}
			if ran[canon] {
				continue
			}
			ran[canon] = true
			logger.Info("experiment start", "id", canon)
			start := time.Now()
			out, err := sess.Experiment(canon)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			logger.Info("experiment done", "id", canon, "seconds", time.Since(start).Seconds())
			fmt.Print(out)
			fmt.Printf("  [%s in %.1fs]\n\n", canon, time.Since(start).Seconds())
		}
		if *cacheStats {
			fmt.Print(sess.CacheStats())
		}
		if tracer != nil {
			closeTrace(tracer, traceFile)
		}
	case *expID != "":
		requireValidName("experiment", *expID, critics.ExperimentIDs())
		var tracer *telemetry.Tracer
		var traceFile *os.File
		if *traceOut != "" {
			tracer, traceFile = openTrace()
			opts = append(opts, critics.WithTracer(tracer))
		}
		sess := critics.NewSession(opts...)
		logger.Info("experiment start", "id", *expID)
		start := time.Now()
		out, err := sess.Experiment(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		logger.Info("experiment done", "id", *expID, "seconds", time.Since(start).Seconds())
		fmt.Print(out)
		if *cacheStats {
			fmt.Print(sess.CacheStats())
		}
		if tracer != nil {
			closeTrace(tracer, traceFile)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// requireValidName exits 1 with the full list of valid names when name is
// not one of them.
func requireValidName(kind, name string, valid []string) {
	for _, v := range valid {
		if v == name {
			return
		}
	}
	fmt.Fprintf(os.Stderr, "criticsim: unknown %s %q (valid: %s)\n", kind, name, strings.Join(valid, ", "))
	os.Exit(1)
}
