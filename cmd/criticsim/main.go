// Command criticsim reproduces the paper's evaluation: it runs any table or
// figure experiment by id and prints the same rows/series the paper reports.
//
// Usage:
//
//	criticsim -list
//	criticsim -exp fig10a
//	criticsim -all
//	criticsim -app acrobat          # end-to-end single-app report
//	criticsim -exp fig11a -quick    # reduced windows
//	criticsim -all -workers 8 -cache-stats
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"critics"
)

func main() {
	var (
		expID      = flag.String("exp", "", "experiment id to run (see -list)")
		all        = flag.Bool("all", false, "run every experiment")
		list       = flag.Bool("list", false, "list experiment ids")
		app        = flag.String("app", "", "run the end-to-end pipeline on one app")
		quick      = flag.Bool("quick", false, "reduced window sizes")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial; results identical)")
		cacheStats = flag.Bool("cache-stats", false, "print memo-cache hit/miss counters after the run")
	)
	flag.Parse()

	var opts []critics.Option
	if *quick {
		opts = append(opts, critics.WithQuickScale())
	}
	opts = append(opts, critics.WithWorkers(*workers))

	switch {
	case *list:
		for _, id := range critics.ExperimentIDs() {
			fmt.Println(id)
		}
	case *app != "":
		rep, err := critics.OptimizeApp(*app, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(rep)
	case *all:
		// fig3a/b/c share a runner, as do fig10a/b/c and fig11a/b; run
		// each runner once. A session caches programs/profiles/variants
		// and measurements across experiments.
		sess := critics.NewSession(opts...)
		ran := map[string]bool{}
		dedup := map[string]string{
			"fig3b": "fig3a", "fig3c": "fig3a",
			"fig10b": "fig10a", "fig10c": "fig10a",
			"fig11b": "fig11a",
			"fig13b": "fig13a",
		}
		for _, id := range critics.ExperimentIDs() {
			canon := id
			if c, ok := dedup[id]; ok {
				canon = c
			}
			if ran[canon] {
				continue
			}
			ran[canon] = true
			start := time.Now()
			out, err := sess.Experiment(canon)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(out)
			fmt.Printf("  [%s in %.1fs]\n\n", canon, time.Since(start).Seconds())
		}
		if *cacheStats {
			fmt.Print(sess.CacheStats())
		}
	case *expID != "":
		sess := critics.NewSession(opts...)
		out, err := sess.Experiment(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
		if *cacheStats {
			fmt.Print(sess.CacheStats())
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
