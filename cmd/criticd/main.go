// Command criticd is the long-lived profiling-and-optimization daemon: a
// REST/JSON service over a bounded job queue that profiles, optimizes and
// simulates apps on demand, sharing one artifact cache across all requests.
//
// Usage:
//
//	criticd                                # defaults: :9720, queue 64, 2 jobs
//	criticd -addr 127.0.0.1:0              # ephemeral port (printed on stdout)
//	criticd -queue 128 -jobs 4 -job-workers 8
//	criticd -quick -job-timeout 2m         # reduced windows, tighter deadline
//
// Endpoints: POST/GET /v1/jobs, GET /v1/jobs/{id}[/result], DELETE
// /v1/jobs/{id}, GET /v1/apps, /v1/experiments, /healthz, /readyz,
// /metrics. cmd/criticctl is the matching client.
//
// SIGINT/SIGTERM drain gracefully: readiness flips to 503, queued jobs fail
// with a retryable status, in-flight jobs complete (up to -drain-timeout),
// then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"critics/internal/server"
	"critics/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":9720", "listen address (host:port; port 0 picks one)")
		queueSize    = flag.Int("queue", 64, "bounded job queue size (full queue refuses with 429)")
		jobs         = flag.Int("jobs", 2, "jobs executing concurrently")
		jobWorkers   = flag.Int("job-workers", 0, "per-job shard pool bound (0 = GOMAXPROCS)")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "default per-job deadline (requests may set their own)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "grace for in-flight jobs at shutdown")
		quick        = flag.Bool("quick", false, "force reduced-scale windows for every job")
		verbose      = flag.Bool("v", false, "structured request/job log on stderr")
	)
	flag.Parse()

	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	reg := telemetry.NewRegistry()
	srv := server.New(server.Config{
		QueueSize:  *queueSize,
		Workers:    *jobs,
		JobWorkers: *jobWorkers,
		JobTimeout: *jobTimeout,
		QuickScale: *quick,
		Registry:   reg,
		Logger:     logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "criticd:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}

	// The one line scripts parse: the resolved address, including an
	// ephemeral port when -addr ended in :0.
	fmt.Printf("criticd listening on http://%s\n", ln.Addr())
	logger.Info("serving", "addr", ln.Addr().String(), "queue", *queueSize, "jobs", *jobs)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		logger.Info("draining", "signal", sig.String(), "grace", drainTimeout.String())
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "criticd:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain order: refuse new work and finish jobs first, then close the
	// HTTP listener so late status polls still get answers while jobs run.
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "criticd: drain incomplete:", err)
		_ = hs.Shutdown(context.Background())
		os.Exit(1)
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "criticd:", err)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
