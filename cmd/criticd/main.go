// Command criticd is the long-lived profiling-and-optimization daemon: a
// REST/JSON service over a bounded job queue that profiles, optimizes and
// simulates apps on demand, sharing one artifact cache across all requests.
//
// Usage:
//
//	criticd                                # defaults: :9720, queue 64, 2 jobs
//	criticd -addr 127.0.0.1:0              # ephemeral port (printed on stdout)
//	criticd -queue 128 -jobs 4 -job-workers 8
//	criticd -quick -job-timeout 2m         # reduced windows, tighter deadline
//
// Endpoints: POST/GET /v1/jobs, GET /v1/jobs/{id}[/result|/trace], DELETE
// /v1/jobs/{id}, POST /v1/profiles, GET /v1/fleet, GET /v1/apps,
// /v1/experiments, /debug/events, /healthz, /readyz, /metrics.
// cmd/criticctl is the matching client.
//
// Fleet PGO loop (internal/fleet): devices — cmd/criticfleet simulates a
// fleet of them — stream bounded profile sketches to POST /v1/profiles
// (bounded by -profile-queue; saturation answers 429 + Retry-After), the
// daemon folds them into a per-app consensus, and a "fleet" job iterates
// candidate CritIC selections against that consensus until they converge.
//
// Observability (internal/obs): every job is traced (GET
// /v1/jobs/{id}/trace, ?format=chrome for Perfetto), lifecycle events land
// in the flight recorder (GET /debug/events?job=...), and stage latencies
// (queue_wait/dispatch_rtt/compute/e2e) are exported with exemplar trace
// ids for `criticctl slo` / `criticctl top`. -trace-out streams engine
// spans to a file whose JSON document is completed on graceful drain.
//
// Distributed execution (internal/dist): -dist turns the daemon into a fleet
// coordinator — jobs' measurement units are farmed out to workers, and the
// fleet-management endpoints appear under /dist/v1/. Workers are listed
// up-front (-dist-workers) or self-register. -worker starts the other side:
// a task-execution node that serves /dist/v1/task and, given -coordinator,
// announces itself (deregistering again on shutdown).
//
//	criticd -worker -addr 127.0.0.1:9721 -coordinator http://coord:9720
//	criticd -dist -dist-workers http://w1:9721,http://w2:9721
//
// SIGINT/SIGTERM drain gracefully: readiness flips to 503, queued jobs fail
// with a retryable status, in-flight jobs complete (up to -drain-timeout),
// then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"critics/internal/artifact"
	"critics/internal/dist"
	"critics/internal/server"
	"critics/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":9720", "listen address (host:port; port 0 picks one)")
		queueSize    = flag.Int("queue", 64, "bounded job queue size (full queue refuses with 429)")
		jobs         = flag.Int("jobs", 2, "jobs executing concurrently")
		jobWorkers   = flag.Int("job-workers", 0, "per-job shard pool bound (0 = GOMAXPROCS)")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "default per-job deadline (requests may set their own)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "grace for in-flight jobs at shutdown")
		profileQueue = flag.Int("profile-queue", 256, "bounded fleet profile-sketch ingest queue (full queue refuses POST /v1/profiles with 429)")
		quick        = flag.Bool("quick", false, "force reduced-scale windows for every job")
		artifactDir  = flag.String("artifact-dir", "", "directory backing the content-addressed artifact store (persists across restarts; empty = temp dir removed at exit). Worker mode: the local warm cache for scan artifacts")
		traceOut     = flag.String("trace-out", "", "write engine-level Chrome trace-event JSON here, flushed complete on graceful drain")
		verbose      = flag.Bool("v", false, "structured request/job log on stderr")

		worker      = flag.Bool("worker", false, "run as a task-execution worker instead of a job daemon")
		coordinator = flag.String("coordinator", "", "worker mode: coordinator base URL to register with")
		advertise   = flag.String("advertise", "", "worker mode: base URL the coordinator should dial back (default http://<resolved addr>)")
		capacity    = flag.Int("capacity", 2, "worker mode: tasks executed concurrently")
		failFirst   = flag.Int("fail-first-tasks", 0, "worker mode: answer the first N tasks with an injected 500 (chaos hook for retry smoke tests)")

		distMode    = flag.Bool("dist", false, "enable distributed execution (this daemon coordinates a worker fleet)")
		distWorkers = flag.String("dist-workers", "", "comma-separated worker base URLs to register up-front (implies -dist)")
	)
	flag.Parse()

	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *worker {
		runWorker(logger, *addr, *coordinator, *advertise, *artifactDir, *capacity, *jobWorkers, *failFirst, *drainTimeout)
		return
	}

	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg, "criticd")

	// -artifact-dir persists the store across restarts (Open re-adopts the
	// blobs on disk); without it the server creates a temp store it removes
	// at shutdown.
	var store *artifact.Store
	if *artifactDir != "" {
		var err error
		store, err = artifact.Open(artifact.Config{Dir: *artifactDir, Registry: reg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "criticd:", err)
			os.Exit(1)
		}
	}

	// The tracer streams spans for the daemon's whole lifetime; closeTrace
	// terminates the JSON document. It runs after Shutdown on every exit
	// path, so a SIGTERM drain never leaves a truncated trace behind.
	closeTrace := func() {}
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "criticd:", err)
			os.Exit(1)
		}
		tracer = telemetry.NewTracer(f)
		closeTrace = func() {
			if err := tracer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "criticd: closing trace:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "criticd: closing trace file:", err)
			}
			logger.Info("trace written", "path", *traceOut)
		}
	}

	var coord *dist.Coordinator
	if *distMode || *distWorkers != "" {
		coord = dist.NewCoordinator(dist.Config{Registry: reg, Logger: logger})
		for _, u := range strings.Split(*distWorkers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				coord.AddWorkerCapacity(strings.TrimRight(u, "/"), *capacity)
			}
		}
	}
	srv := server.New(server.Config{
		QueueSize:    *queueSize,
		ProfileQueue: *profileQueue,
		Workers:      *jobs,
		JobWorkers:   *jobWorkers,
		JobTimeout:   *jobTimeout,
		QuickScale:   *quick,
		Registry:     reg,
		Tracer:       tracer,
		Logger:       logger,
		Coordinator:  coord,
		Artifacts:    store,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "criticd:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}

	// The one line scripts parse: the resolved address, including an
	// ephemeral port when -addr ended in :0.
	fmt.Printf("criticd listening on http://%s\n", ln.Addr())
	logger.Info("serving", "addr", ln.Addr().String(), "queue", *queueSize, "jobs", *jobs,
		"dist", coord != nil)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		logger.Info("draining", "signal", sig.String(), "grace", drainTimeout.String())
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "criticd:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain order: refuse new work and finish jobs first (the coordinator
	// drains alongside so remote units complete), then close the HTTP
	// listener so late status polls still get answers while jobs run.
	if coord != nil {
		defer coord.Close()
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "criticd: drain incomplete:", err)
		closeTrace() // in-flight jobs were cancelled; keep what was traced
		_ = hs.Shutdown(context.Background())
		os.Exit(1)
	}
	closeTrace()
	if coord != nil {
		if err := coord.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "criticd:", err)
		}
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "criticd:", err)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// runWorker is criticd -worker: serve the dist task API, optionally announce
// to a coordinator, and on SIGINT/SIGTERM deregister, finish in-flight tasks
// and exit.
func runWorker(logger *slog.Logger, addr, coordURL, advertise, artifactDir string, capacity, jobWorkers, failFirst int, drainTimeout time.Duration) {
	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg, "criticd-worker")
	coordURL = strings.TrimRight(coordURL, "/")
	// The worker's artifact store is its warm cache for scan inputs; a
	// -artifact-dir shared across restarts makes a recycled worker start
	// warm. Missing artifacts are fetched from the coordinator by digest.
	var store *artifact.Store
	if artifactDir != "" {
		var err error
		store, err = artifact.Open(artifact.Config{Dir: artifactDir, Registry: reg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "criticd:", err)
			os.Exit(1)
		}
	}
	wk := dist.NewWorker(dist.WorkerConfig{
		Workers:        jobWorkers,
		Capacity:       capacity,
		Registry:       reg,
		Logger:         logger,
		FailFirstTasks: failFirst,
		Artifacts:      store,
		ArtifactSource: coordURL,
	})

	mux := http.NewServeMux()
	mux.Handle("/", wk.Handler())
	mux.Handle("GET /metrics", reg)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "criticd:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: mux}

	// Same parse line as daemon mode, so the launch scripts are shared.
	fmt.Printf("criticd listening on http://%s\n", ln.Addr())
	if advertise == "" {
		advertise = "http://" + ln.Addr().String()
	}
	advertise = strings.TrimRight(advertise, "/")
	logger.Info("worker serving", "addr", ln.Addr().String(), "capacity", capacity, "advertise", advertise)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	if coordURL != "" {
		regCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
		if err := dist.Register(regCtx, nil, coordURL, advertise, capacity); err != nil {
			cancel()
			fmt.Fprintln(os.Stderr, "criticd:", err)
			os.Exit(1)
		}
		cancel()
		logger.Info("registered with coordinator", "coordinator", coordURL)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		logger.Info("draining", "signal", sig.String(), "grace", drainTimeout.String())
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "criticd:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain order: leave the fleet so no new tasks are routed here, finish
	// in-flight tasks, then close the listener.
	if coordURL != "" {
		if err := dist.Deregister(ctx, nil, coordURL, advertise); err != nil {
			logger.Warn("deregister failed", "err", err)
		}
	}
	wk.Drain()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "criticd:", err)
		os.Exit(1)
	}
	logger.Info("worker drained cleanly")
}
