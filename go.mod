module critics

go 1.22
