// Hwcompare: the §IV-G question for a single app — can the software-only
// CritIC pass keep up with hardware fetch mechanisms (wider front end, 4x
// i-cache, EFetch instruction prefetching, a perfect branch predictor,
// backend criticality prioritization), and does it compose with them?
package main

import (
	"flag"
	"fmt"
	"log"

	"critics/internal/cpu"
	"critics/internal/exp"
	"critics/internal/workload"
)

func main() {
	name := flag.String("app", "youtube", "app to compare on")
	flag.Parse()

	app, ok := workload.FindApp(*name)
	if !ok {
		log.Fatalf("unknown app %q", *name)
	}
	ctx := exp.QuickContext()
	p := ctx.Program(app)
	cp, _ := ctx.Variant(app, exp.VarCritIC)

	base := ctx.Measure(p, cpu.DefaultConfig(), false)
	mCrit := ctx.Measure(cp, cpu.DefaultConfig(), false)

	fmt.Printf("hardware mechanisms vs CritIC on %s (speedup %% over baseline)\n\n", *name)
	fmt.Printf("  %-14s %10s %14s\n", "mechanism", "alone", "with CritIC")
	fmt.Printf("  %-14s %10.2f %14s\n", "CritIC (SW)", exp.Speedup(base, mCrit), "-")
	for _, mech := range exp.HWMechs {
		cfg := exp.ApplyHW(mech)
		alone := ctx.Measure(p, cfg, false)
		with := ctx.Measure(cp, cfg, false)
		fmt.Printf("  %-14s %10.2f %14.2f\n", mech, exp.Speedup(base, alone), exp.Speedup(base, with))
	}
	fmt.Println("\nCritIC needs no additional hardware; the rows show it composes with each mechanism.")
}
