// Appstudy: a per-app deep dive using the library's building blocks
// directly — the workload the paper's intro motivates (a user-interactive
// document reader) is traced, its dependence-chain structure is analyzed,
// the profiler's chains are listed, and the pipeline-stage residency of its
// critical instructions is broken down (the paper's Fig. 3 view).
package main

import (
	"flag"
	"fmt"
	"log"

	"critics/internal/cpu"
	"critics/internal/dfg"
	"critics/internal/exp"
	"critics/internal/workload"
)

func main() {
	name := flag.String("app", "maps", "app to study")
	flag.Parse()

	app, ok := workload.FindApp(*name)
	if !ok {
		log.Fatalf("unknown app %q", *name)
	}
	ctx := exp.QuickContext()

	p := ctx.Program(app)
	fmt.Printf("app %s: %d functions, %d static instructions, %d bytes of code\n",
		*name, len(p.Funcs), p.NumInstrs(), p.CodeBytes)

	// Dependence-chain structure of the dynamic stream.
	m := ctx.Measure(p, cpu.DefaultConfig(), true)
	chains := dfg.Extract(m.Dyns, dfg.DefaultOptions())
	ls := dfg.MeasureLengthSpread(chains)
	fmt.Printf("instruction chains: %d found; max length %d, max spread %d, mean length %.1f\n",
		len(chains), ls.MaxLen, ls.MaxSpread, ls.MeanLen)
	fmt.Printf("critical instructions (fanout >= 8): %.1f%% of the stream\n",
		100*dfg.CriticalFraction(m.Fanouts, 8))

	gaps := dfg.HighFanoutGaps(chains, m.Fanouts, 8, 5)
	fmt.Println("gaps between successive high-fanout chain members (Fig 1b):")
	for k := 0; k <= 5; k++ {
		fmt.Printf("  %d low-fanout members: %5.1f%%\n", k, 100*gaps.Gaps.Frac(k))
	}
	fmt.Printf("  no dependent high-fanout successor: %5.1f%%\n", 100*gaps.FracNone())

	// Profiler output.
	prof := ctx.Profile(app, false, 1)
	fmt.Printf("\nprofile: %d unique chains, %d selected, %.1f%% coverage, %.1f%% 16-bit representable\n",
		prof.UniqueChains(), len(prof.Selected()), 100*prof.SelectedCoverage, 100*prof.ThumbRepresentableFrac())

	// Stage residency of critical instructions (Fig 3a view).
	var crit cpu.Breakdown
	n := 0
	for i := range m.Res.Records {
		if m.Fanouts[i] >= 8 {
			crit.Add(cpu.BreakdownOf(&m.Res.Records[i]))
			n++
		}
	}
	if t := crit.Total(); t > 0 && n > 0 {
		fmt.Printf("\nstage residency of the %d critical instructions:\n", n)
		fmt.Printf("  fetch (F.StallForI):   %5.1f%%\n", 100*float64(crit.FetchI)/float64(t))
		fmt.Printf("  fetch (F.StallForR+D): %5.1f%%\n", 100*float64(crit.FetchRD)/float64(t))
		fmt.Printf("  decode:                %5.1f%%\n", 100*float64(crit.Decode)/float64(t))
		fmt.Printf("  rename/issue wait:     %5.1f%%\n", 100*float64(crit.Rename)/float64(t))
		fmt.Printf("  execute:               %5.1f%%\n", 100*float64(crit.Execute)/float64(t))
		fmt.Printf("  commit wait:           %5.1f%%\n", 100*float64(crit.Commit)/float64(t))
	}

	// And the payoff.
	opt, st := ctx.Variant(app, exp.VarCritIC)
	mOpt := ctx.Measure(opt, cpu.DefaultConfig(), false)
	fmt.Printf("\nCritIC pass: %v\n", st)
	fmt.Printf("speedup: %.2f%% (%d -> %d cycles)\n",
		exp.Speedup(m, mOpt), m.Res.Cycles, mOpt.Res.Cycles)
}
