// Designspace: sweep the two design knobs the paper fixes — the chain
// criticality threshold (average fanout, fixed at 8 in §III-C) and the
// maximum chain length (fixed at 5 in §IV-H) — for one app, showing the
// trade-offs behind those choices. This is the ablation DESIGN.md calls out
// beyond the paper's own Fig. 12a sweep.
package main

import (
	"flag"
	"fmt"
	"log"

	"critics/internal/compiler"
	"critics/internal/core"
	"critics/internal/cpu"
	"critics/internal/exp"
	"critics/internal/trace"
	"critics/internal/workload"
)

func main() {
	name := flag.String("app", "acrobat", "app to sweep")
	flag.Parse()

	app, ok := workload.FindApp(*name)
	if !ok {
		log.Fatalf("unknown app %q", *name)
	}
	ctx := exp.QuickContext()
	p := ctx.Program(app)
	base := ctx.Measure(p, cpu.DefaultConfig(), false)
	ws := trace.Collect(p, app.Params.Seed, ctx.ProfilePlan)

	fmt.Printf("design-space sweep for %s (baseline %d cycles)\n\n", *name, base.Res.Cycles)

	fmt.Println("criticality threshold sweep (max length 5):")
	fmt.Printf("  %-10s %8s %10s %10s\n", "threshold", "chains", "coverage%", "speedup%")
	for _, th := range []float64{4, 6, 8, 10, 12} {
		cfg := core.DefaultConfig()
		cfg.AvgFanoutThreshold = th
		prof := core.BuildProfile(p, ws, cfg)
		q, _, err := compiler.ApplyCritIC(p, prof, compiler.Options{MaxLen: 5, Switch: compiler.SwitchCDP})
		if err != nil {
			log.Fatal(err)
		}
		m := ctx.Measure(q, cpu.DefaultConfig(), false)
		fmt.Printf("  %-10.0f %8d %10.1f %10.2f\n",
			th, len(prof.Selected()), 100*prof.SelectedCoverage, exp.Speedup(base, m))
	}

	fmt.Println("\nmaximum chain length sweep (threshold 8):")
	fmt.Printf("  %-10s %8s %10s %10s\n", "maxLen", "chains", "coverage%", "speedup%")
	for _, ml := range []int{2, 3, 4, 5, 6, 8} {
		cfg := core.DefaultConfig()
		cfg.MaxLen = ml
		prof := core.BuildProfile(p, ws, cfg)
		q, _, err := compiler.ApplyCritIC(p, prof, compiler.Options{MaxLen: ml, Switch: compiler.SwitchCDP})
		if err != nil {
			log.Fatal(err)
		}
		m := ctx.Measure(q, cpu.DefaultConfig(), false)
		fmt.Printf("  %-10d %8d %10.1f %10.2f\n",
			ml, len(prof.Selected()), 100*prof.SelectedCoverage, exp.Speedup(base, m))
	}
}
