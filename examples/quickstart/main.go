// Quickstart: run the full CritIC pipeline — profile, compile, simulate —
// on one Play Store app model and print the end-to-end report.
package main

import (
	"fmt"
	"log"

	"critics"
)

func main() {
	fmt.Println("CritICs quickstart: profiling and optimizing the Acrobat app model")
	fmt.Println()

	report, err := critics.OptimizeApp("acrobat", critics.WithQuickScale())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	fmt.Println()
	fmt.Println("All ten Table II apps:")
	for _, name := range critics.Apps() {
		r, err := critics.OptimizeApp(name, critics.WithQuickScale())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s speedup %6.2f%%   system energy -%5.2f%%\n",
			name, r.SpeedupPct, r.SystemEnergySavingPct)
	}
}
