package critics

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"critics/internal/fleet"
	"critics/internal/sketch"
)

// fleetBenchSketches returns one round-1 device sketch per simulated device,
// built once and shared — the benchmarks measure merging and ingest, not
// device-side profiling.
var fleetBenchSketches = sync.OnceValue(func() []*sketch.Sketch {
	app := acrobatProgram()
	out := make([]*sketch.Sketch, 16)
	for i := range out {
		out[i] = fleet.BuildDeviceSketch(*app, fmt.Sprintf("bench-device-%02d", i), 1)
	}
	return out
})

// BenchmarkSketchMerge measures one consensus lattice join: folding the full
// device set into a fresh sketch, the coordinator's hot path. ns/op divided
// by the device count is the per-sketch merge cost.
func BenchmarkSketchMerge(b *testing.B) {
	sks := fleetBenchSketches()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := sketch.New(sks[0].App)
		for _, sk := range sks {
			acc.Merge(sk)
		}
	}
}

// BenchmarkSketchDecode measures the strict wire decoder on a consensus-size
// sketch — the per-request cost of POST /v1/profiles before admission.
func BenchmarkSketchDecode(b *testing.B) {
	acc := sketch.New(fleetBenchSketches()[0].App)
	for _, sk := range fleetBenchSketches() {
		acc.Merge(sk)
	}
	wire := acc.Encode()
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sketch.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetIngest measures end-to-end ingest throughput: offering the
// device set through the bounded queue and draining, so one op is a full
// fleet round (queue handoff + merge + metrics). sketches/sec =
// len(devices) / (ns_per_op * 1e-9).
func BenchmarkFleetIngest(b *testing.B) {
	sks := fleetBenchSketches()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := fleet.NewService(fleet.Config{QueueSize: len(sks)})
		for _, sk := range sks {
			if !s.Offer(sk) {
				b.Fatal("offer refused with a fleet-sized queue")
			}
		}
		s.Drain()
	}
}

// fleetBenchEntry is one benchmark's line in BENCH_fleet.json.
type fleetBenchEntry struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
	UsPerOp     float64 `json:"us_per_op"`
}

// fleetBenchReport is the schema of BENCH_fleet.json — the fleet ingest
// throughput trajectory, written by TestWriteFleetBench in CI.
type fleetBenchReport struct {
	Devices         int             `json:"devices"`
	WireBytes       int             `json:"wire_bytes"` // consensus sketch wire size
	GoMaxProcs      int             `json:"gomaxprocs"`
	Merge           fleetBenchEntry `json:"merge"`
	Decode          fleetBenchEntry `json:"decode"`
	Ingest          fleetBenchEntry `json:"ingest"`
	IngestPerSecond float64         `json:"ingest_sketches_per_second"`
}

func toFleetEntry(r testing.BenchmarkResult) fleetBenchEntry {
	return fleetBenchEntry{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		N:           r.N,
		UsPerOp:     float64(r.NsPerOp()) / 1e3,
	}
}

// TestWriteFleetBench runs the fleet benchmarks once and writes
// BENCH_fleet.json (sketch-merge ns/op, decode ns/op, ingest throughput) to
// the path named by the BENCH_FLEET_OUT environment variable; unset, the
// test is skipped.
func TestWriteFleetBench(t *testing.T) {
	out := os.Getenv("BENCH_FLEET_OUT")
	if out == "" {
		t.Skip("BENCH_FLEET_OUT not set")
	}
	merge := testing.Benchmark(BenchmarkSketchMerge)
	decode := testing.Benchmark(BenchmarkSketchDecode)
	ingest := testing.Benchmark(BenchmarkFleetIngest)

	acc := sketch.New(fleetBenchSketches()[0].App)
	for _, sk := range fleetBenchSketches() {
		acc.Merge(sk)
	}
	rep := fleetBenchReport{
		Devices:    len(fleetBenchSketches()),
		WireBytes:  len(acc.Encode()),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Merge:      toFleetEntry(merge),
		Decode:     toFleetEntry(decode),
		Ingest:     toFleetEntry(ingest),
	}
	if ns := ingest.NsPerOp(); ns > 0 {
		rep.IngestPerSecond = float64(rep.Devices) / (float64(ns) / 1e9)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("fleet bench: merge %.1fµs/op, decode %.1fµs/op, ingest %.0f sketches/s (%d devices, %d wire bytes)",
		rep.Merge.UsPerOp, rep.Decode.UsPerOp, rep.IngestPerSecond, rep.Devices, rep.WireBytes)
}
