package critics

import (
	"sync"
	"testing"

	"critics/internal/compiler"
	"critics/internal/core"
	"critics/internal/cpu"
	"critics/internal/dfg"
	"critics/internal/encoding"
	"critics/internal/exp"
	"critics/internal/isa"
	"critics/internal/telemetry"
	"critics/internal/trace"
	"critics/internal/workload"
)

// benchSession is shared across the experiment benchmarks so programs,
// profiles and compiled variants are built once.
var (
	benchOnce sync.Once
	benchSess *Session
)

func session() *Session {
	benchOnce.Do(func() {
		benchSess = NewSession(WithQuickScale())
	})
	return benchSess
}

// benchExp runs one experiment id per iteration. The first iteration pays
// for program/profile/measurement construction; later iterations hit the
// session's memo caches, so the steady-state number measures the experiment
// pipeline with baseline reuse (the engine's production behavior across
// figures). Cache hit/miss deltas are reported as benchmark metrics.
func benchExp(b *testing.B, id string) {
	b.Helper()
	sess := session()
	before := sess.CacheStats()
	for i := 0; i < b.N; i++ {
		out, err := sess.Experiment(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
	after := sess.CacheStats()
	b.ReportMetric(float64(after.Measurements.Hits-before.Measurements.Hits)/float64(b.N), "meas-hits/op")
	b.ReportMetric(float64(after.Measurements.Misses-before.Measurements.Misses)/float64(b.N), "meas-misses/op")
}

// BenchmarkAllExperiments runs the full figure/table suite per iteration
// through one session, the way cmd/criticsim -all does. The memo caches make
// experiments after the first reuse each app's baseline and variant
// measurements instead of regenerating and resimulating them (the seed code
// rebuilt each baseline once per figure).
func BenchmarkAllExperiments(b *testing.B) {
	ids := ExperimentIDs()
	sess := NewSession(WithQuickScale())
	before := sess.CacheStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range ids {
			out, err := sess.Experiment(id)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) == 0 {
				b.Fatal("empty experiment output")
			}
		}
	}
	b.StopTimer()
	after := sess.CacheStats()
	b.ReportMetric(float64(after.Measurements.Hits-before.Measurements.Hits)/float64(b.N), "meas-hits/op")
	b.ReportMetric(float64(after.Measurements.Misses-before.Measurements.Misses)/float64(b.N), "meas-misses/op")
}

// One benchmark per table and figure of the paper's evaluation (DESIGN.md's
// per-experiment index).

func BenchmarkFig1a(b *testing.B)  { benchExp(b, "fig1a") }
func BenchmarkFig1b(b *testing.B)  { benchExp(b, "fig1b") }
func BenchmarkFig3a(b *testing.B)  { benchExp(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)  { benchExp(b, "fig3b") }
func BenchmarkFig3c(b *testing.B)  { benchExp(b, "fig3c") }
func BenchmarkFig5a(b *testing.B)  { benchExp(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)  { benchExp(b, "fig5b") }
func BenchmarkFig8(b *testing.B)   { benchExp(b, "fig8") }
func BenchmarkFig10a(b *testing.B) { benchExp(b, "fig10a") }
func BenchmarkFig10b(b *testing.B) { benchExp(b, "fig10b") }
func BenchmarkFig10c(b *testing.B) { benchExp(b, "fig10c") }
func BenchmarkFig11a(b *testing.B) { benchExp(b, "fig11a") }
func BenchmarkFig11b(b *testing.B) { benchExp(b, "fig11b") }
func BenchmarkFig12a(b *testing.B) { benchExp(b, "fig12a") }
func BenchmarkFig12b(b *testing.B) { benchExp(b, "fig12b") }
func BenchmarkFig13a(b *testing.B) { benchExp(b, "fig13a") }
func BenchmarkFig13b(b *testing.B) { benchExp(b, "fig13b") }
func BenchmarkTable1(b *testing.B) { benchExp(b, "tab1") }
func BenchmarkTable2(b *testing.B) { benchExp(b, "tab2") }

// ---- Component micro-benchmarks -----------------------------------------

// acrobatProgram returns a generated app program shared by the micro
// benchmarks.
var acrobatProgram = sync.OnceValue(func() *workload.App {
	a, _ := workload.FindApp("acrobat")
	return &a
})

func BenchmarkTraceGeneration(b *testing.B) {
	app := acrobatProgram()
	p := workload.Generate(app.Params)
	g := trace.NewGenerator(p, 1)
	buf := make([]trace.Dyn, 0, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Generate(buf[:0], 10_000)
	}
	b.SetBytes(10_000)
}

func BenchmarkPipelineSimulation(b *testing.B) {
	app := acrobatProgram()
	p := workload.Generate(app.Params)
	g := trace.NewGenerator(p, 1)
	g.Skip(10_000)
	dyns := g.Generate(nil, 20_000)
	fan := dfg.Fanouts(dyns, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := cpu.New(cpu.DefaultConfig())
		s.Run(dyns, fan)
	}
	b.SetBytes(20_000)
}

// BenchmarkSimNoRecords is the allocation guard for the no-records
// simulation hot path: with a hoisted Sim and the window buffers warm in
// the pool, a Run must not allocate per instruction (CI pins allocs/op —
// see the bench-smoke step).
func BenchmarkSimNoRecords(b *testing.B) {
	app := acrobatProgram()
	p := workload.Generate(app.Params)
	g := trace.NewGenerator(p, 1)
	g.Skip(10_000)
	dyns := g.Generate(nil, 20_000)
	fan := dfg.Fanouts(dyns, 128)
	s := cpu.New(cpu.DefaultConfig())
	s.Run(dyns, fan) // warm the buffer pool before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(dyns, fan)
	}
	b.SetBytes(20_000)
}

// BenchmarkMeasureStreaming runs the streamed (collect=false) measurement
// primitive end-to-end — generate, online fanout, simulate — at quick
// scale; allocs/op shows the constant per-window footprint.
func BenchmarkMeasureStreaming(b *testing.B) {
	ctx := exp.QuickContext()
	app := acrobatProgram()
	p := ctx.Program(*app)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Measure(p, cpu.DefaultConfig(), false)
	}
}

// benchmarkSimTelemetry is the overhead guard for the telemetry nil-sink
// fast path: Off simulates with Config.Metrics nil (the default every
// experiment runs with unless -metrics-addr is up) and must stay within 2%
// of the seed BenchmarkPipelineSimulation number; On attaches a live
// registry and shows the full instrumented cost. CI runs both so the pair
// is comparable in one log.
func benchmarkSimTelemetry(b *testing.B, metrics *cpu.Metrics) {
	app := acrobatProgram()
	p := workload.Generate(app.Params)
	g := trace.NewGenerator(p, 1)
	g.Skip(10_000)
	dyns := g.Generate(nil, 20_000)
	fan := dfg.Fanouts(dyns, 128)
	cfg := cpu.DefaultConfig()
	cfg.Metrics = metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := cpu.New(cfg)
		s.Run(dyns, fan)
	}
	b.SetBytes(20_000)
}

func BenchmarkSimTelemetryOff(b *testing.B) { benchmarkSimTelemetry(b, nil) }

func BenchmarkSimTelemetryOn(b *testing.B) {
	benchmarkSimTelemetry(b, cpu.NewMetrics(telemetry.NewRegistry()))
}

func BenchmarkChainExtraction(b *testing.B) {
	app := acrobatProgram()
	p := workload.Generate(app.Params)
	g := trace.NewGenerator(p, 1)
	g.Skip(10_000)
	dyns := g.Generate(nil, 20_000)
	opt := dfg.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dfg.Extract(dyns, opt)
	}
	b.SetBytes(20_000)
}

func BenchmarkProfiler(b *testing.B) {
	app := acrobatProgram()
	p := workload.Generate(app.Params)
	ws := trace.Collect(p, 1, trace.SamplePlan{Samples: 4, Length: 10_000, Gap: 2_000, Warmup: 2_000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildProfile(p, ws, core.DefaultConfig())
	}
}

func BenchmarkCritICPass(b *testing.B) {
	app := acrobatProgram()
	p := workload.Generate(app.Params)
	ws := trace.Collect(p, 1, trace.SamplePlan{Samples: 4, Length: 10_000, Gap: 2_000, Warmup: 2_000})
	prof := core.BuildProfile(p, ws, core.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := compiler.ApplyCritIC(p, prof, compiler.Options{MaxLen: 5, Switch: compiler.SwitchCDP}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeA32(b *testing.B) {
	in := isa.Inst{Op: isa.OpADD, Rd: isa.R1, Rn: isa.R2, Rm: isa.R3}
	for i := 0; i < b.N; i++ {
		if _, err := encoding.EncodeA32(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeT16(b *testing.B) {
	in := isa.Inst{Op: isa.OpADD, Rd: isa.R1, Rn: isa.R2, Rm: isa.R3}
	for i := 0; i < b.N; i++ {
		if _, err := encoding.EncodeT16(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	app := acrobatProgram()
	for i := 0; i < b.N; i++ {
		workload.Generate(app.Params)
	}
}

// BenchmarkEndToEnd runs the complete pipeline (profile + compile + simulate
// baseline and optimized) for one app at quick scale.
func BenchmarkEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := exp.QuickContext()
		app, _ := workload.FindApp("maps")
		base := ctx.Measure(ctx.Program(app), cpu.DefaultConfig(), false)
		opt, _ := ctx.Variant(app, exp.VarCritIC)
		mOpt := ctx.Measure(opt, cpu.DefaultConfig(), false)
		if mOpt.Res.Cycles >= base.Res.Cycles {
			b.Log("no speedup this iteration") // informational; calibration varies per window
		}
	}
}

func BenchmarkAblateFetch(b *testing.B) { benchExp(b, "ablate-fetch") }
func BenchmarkAblateCDP(b *testing.B)   { benchExp(b, "ablate-cdp") }
