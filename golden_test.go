package critics

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/golden/<name>.golden, rewriting
// the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run TestGolden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s; if the change is intended, rerun with -update\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenExperiments pins the exact report text of the experiments
// cmd/criticsim prints (quick scale, fixed seeds), so output-format or
// result drift is visible in review rather than discovered downstream.
// The experiments run serially and with workers=8 against the same golden
// bytes — the determinism guarantee, exercised at the CLI-output level.
func TestGoldenExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment pipelines; skipped in -short")
	}
	for _, workers := range []int{1, 8} {
		sess := NewSession(WithQuickScale(), WithWorkers(workers))
		for _, id := range []string{"fig10a", "fig13a", "tab2"} {
			out, err := sess.Experiment(id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			checkGolden(t, id, out)
		}
	}
}

// TestGoldenProfileJSON pins the serialized profile cmd/criticprof writes.
func TestGoldenProfileJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling pipeline; skipped in -short")
	}
	prof, err := BuildProfile("acrobat", WithQuickScale())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(prof, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "acrobat.profile.json", string(data)+"\n")
}
